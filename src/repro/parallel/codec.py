"""Compact binary wire codec for the simulated message-passing runtime.

The distributed-mesh services historically shipped one pickled Python dict
per migrated/ghosted element and one pickled tuple per synchronized field
value.  Pickle is general but verbose: every record repeats dict keys,
type markers and framing, which inflates the off-node ``wire_bytes`` the
network charges and the wall time every hot path pays to serialize.  This
module provides the compact alternative the paper's communication volumes
assume (Section II-D "message buffer management"): per-destination batches
encoded as struct-packed typed arrays with interned global-id and
classification tables.

Wire format (``RW`` frames, version 1)
--------------------------------------

Every buffer starts with a fixed 14-byte little-endian header::

    offset  size  field
    0       2     magic  b"RW"
    2       1     version (currently 1)
    3       1     kind    (payload schema, below)
    4       1     flags   (bit 0: body contains pickled fallback records)
    5       1     reserved (zero)
    6       4     body length (bytes after the header)
    10      4     CRC-32 of the body

The CRC is validated *before* any decoding, so truncated or bit-flipped
buffers raise :class:`CodecError` instead of unpickling garbage.  Kinds:

====  =======================  =============================================
kind  constructor              schema
====  =======================  =============================================
0     :func:`dumps`            one generic value (tagged, recursive)
1     :func:`encode_element_batch`  element closure bundles (migration/ghosting)
2     :func:`encode_value_batch`    ``(entity, ndarray)`` field-value batch
3     :func:`encode_int_rows`       ragged integer rows (link rendezvous)
====  =======================  =============================================

Versioning rule: decoders accept exactly the versions they know; any other
version byte raises :class:`CodecError` (the escape hatch is the pickle
codec, selected per :class:`~repro.partition.dmesh.DistributedMesh`).
Standalone integers use LEB128 (zigzag for signed).  Bulk integer columns
are *adaptive width*: one prefix byte (1/2/4/8) chosen from the column's
value range, then the raw little-endian column at that width — so ref and
global-id columns usually cost 1-2 bytes per entry instead of pickle's
framed small-int records.  Coordinate/value columns are raw ``<f8``.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..mesh.entity import Ent

__all__ = [
    "CodecError",
    "MAGIC",
    "VERSION",
    "dumps",
    "loads",
    "encode_element_batch",
    "decode_element_batch",
    "encode_value_batch",
    "decode_value_batch",
    "encode_int_rows",
    "decode_int_rows",
]

MAGIC = b"RW"
VERSION = 1

KIND_VALUE = 0
KIND_ELEMENTS = 1
KIND_VALUES = 2
KIND_INT_ROWS = 3
_KINDS = (KIND_VALUE, KIND_ELEMENTS, KIND_VALUES, KIND_INT_ROWS)

#: Header flag: the body contains at least one pickled fallback record.
FLAG_PICKLED = 0x01

_HEADER = struct.Struct("<2sBBBxII")
HEADER_SIZE = _HEADER.size  # 14


class CodecError(ValueError):
    """A wire buffer failed validation (magic, version, length, CRC, schema)."""


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def _frame(kind: int, flags: int, body: bytes) -> bytes:
    return _HEADER.pack(
        MAGIC, VERSION, kind, flags, len(body), zlib.crc32(body) & 0xFFFFFFFF
    ) + body


def _unframe(data: Any, expect_kind: int) -> memoryview:
    """Validate a frame and return its body; raises :class:`CodecError`."""
    buf = memoryview(data).cast("B") if not isinstance(data, bytes) else data
    if len(buf) < HEADER_SIZE:
        raise CodecError(f"buffer too short for header ({len(buf)} bytes)")
    magic, version, kind, _flags, body_len, crc = _HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise CodecError(f"bad magic {bytes(magic)!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise CodecError(f"unsupported codec version {version}")
    if kind not in _KINDS:
        raise CodecError(f"unknown payload kind {kind}")
    if kind != expect_kind:
        raise CodecError(f"payload kind {kind} where {expect_kind} expected")
    body = memoryview(buf)[HEADER_SIZE:]
    if len(body) != body_len:
        raise CodecError(
            f"length mismatch: header says {body_len} body bytes, "
            f"got {len(body)}"
        )
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CodecError("CRC mismatch: buffer is corrupt")
    return body


# ---------------------------------------------------------------------------
# integer primitives (LEB128, zigzag for signed)
# ---------------------------------------------------------------------------


def _w_uint(out: bytearray, n: int) -> None:
    if n < 0:
        raise CodecError(f"negative value {n} where unsigned expected")
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _w_int(out: bytearray, n: int) -> None:
    _w_uint(out, n * 2 if n >= 0 else -n * 2 - 1)


def _r_uint(buf, pos: int, end: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= end:
            raise CodecError("truncated varint")
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7


def _r_int(buf, pos: int, end: int) -> Tuple[int, int]:
    z, pos = _r_uint(buf, pos, end)
    return (z >> 1) if not z & 1 else -((z + 1) >> 1), pos


#: struct format codes for the wire column dtypes (all little-endian).
_PACK_CODE = {"<u4": "I", "u1": "B", "<i8": "q", "<f8": "d"}
_PACK_SIZE = {"I": 4, "B": 1, "q": 8, "d": 8}


def _w_array(out: bytearray, values, dtype: str) -> None:
    """Append a numeric column as raw little-endian bytes.

    Small columns (the common case: per-message batches of tens of records)
    pack via :mod:`struct`, which beats numpy's array-construction overhead;
    large columns go through one vectorized ``np.asarray``.
    """
    code = _PACK_CODE[dtype]
    if len(values) < 1024:
        try:
            out += struct.pack("<%d%s" % (len(values), code), *values)
        except struct.error:
            raise CodecError(
                f"integer out of range for wire column dtype {dtype}"
            ) from None
        return
    try:
        arr = np.asarray(values, dtype=dtype)
    except OverflowError:
        raise CodecError(
            f"integer out of range for wire column dtype {dtype}"
        ) from None
    out += arr.tobytes()


#: Adaptive column widths: (itemsize, struct code, min, max).
_INT_WIDTHS = (
    (1, "b", -0x80, 0x7F),
    (2, "h", -0x8000, 0x7FFF),
    (4, "i", -0x80000000, 0x7FFFFFFF),
    (8, "q", -0x8000000000000000, 0x7FFFFFFFFFFFFFFF),
)
_UINT_WIDTHS = (
    (1, "B", 0, 0xFF),
    (2, "H", 0, 0xFFFF),
    (4, "I", 0, 0xFFFFFFFF),
    (8, "Q", 0, 0xFFFFFFFFFFFFFFFF),
)
_SIGNED_CODE = {1: "b", 2: "h", 4: "i", 8: "q"}
_UNSIGNED_CODE = {1: "B", 2: "H", 4: "I", 8: "Q"}


def _w_ints(out: bytearray, values, widths=_INT_WIDTHS) -> None:
    """Append an adaptive-width integer column: one width byte (1/2/4/8)
    chosen from the value range, then the packed little-endian column."""
    lo = min(values) if values else 0
    hi = max(values) if values else 0
    for size, code, mn, mx in widths:
        if mn <= lo and hi <= mx:
            out.append(size)
            try:
                out += struct.pack("<%d%s" % (len(values), code), *values)
            except struct.error:
                raise CodecError(
                    "integer out of range for wire column"
                ) from None
            return
    raise CodecError(
        f"integer out of range for wire column ({lo}..{hi})"
    )


def _w_uints(out: bytearray, values) -> None:
    _w_ints(out, values, _UINT_WIDTHS)


def _r_ints(buf, pos: int, count: int, codes=_SIGNED_CODE) -> Tuple[list, int]:
    if pos >= len(buf):
        raise CodecError("truncated adaptive column")
    size = buf[pos]
    pos += 1
    code = codes.get(size)
    if code is None:
        raise CodecError(f"invalid adaptive column width {size}")
    nbytes = size * count
    if pos + nbytes > len(buf):
        raise CodecError("truncated adaptive column")
    return (
        list(struct.unpack_from("<%d%s" % (count, code), buf, pos)),
        pos + nbytes,
    )


def _r_uints(buf, pos: int, count: int) -> Tuple[list, int]:
    return _r_ints(buf, pos, count, _UNSIGNED_CODE)


def _r_list(buf, pos: int, count: int, dtype: str) -> Tuple[list, int]:
    """Read a numeric column back as a plain Python list."""
    code = _PACK_CODE[dtype]
    nbytes = _PACK_SIZE[code] * count
    if pos + nbytes > len(buf):
        raise CodecError("truncated numeric column")
    return (
        list(struct.unpack_from("<%d%s" % (count, code), buf, pos)),
        pos + nbytes,
    )


def _r_array(buf, pos: int, count: int, dtype: str) -> Tuple[np.ndarray, int]:
    dt = np.dtype(dtype)
    nbytes = dt.itemsize * count
    if pos + nbytes > len(buf):
        raise CodecError("truncated numeric column")
    arr = np.frombuffer(buf, dtype=dt, count=count, offset=pos)
    return arr, pos + nbytes


# ---------------------------------------------------------------------------
# kind 0: generic tagged values
# ---------------------------------------------------------------------------

_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_BYTEARRAY = 7
_T_TUPLE = 8
_T_LIST = 9
_T_DICT = 10
_T_SET = 11
_T_FROZENSET = 12
_T_NDARRAY = 13
_T_ENT = 14
_T_NPSCALAR = 15
_T_PICKLE = 255

_F64 = struct.Struct("<d")
_F64X3 = struct.Struct("<3d")


def _enc(obj: Any, out: bytearray, state: List[int]) -> None:
    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif type(obj) is int:
        out.append(_T_INT)
        _w_int(out, obj)
    elif type(obj) is float:
        out.append(_T_FLOAT)
        out += _F64.pack(obj)
    elif type(obj) is str:
        raw = obj.encode("utf-8")
        out.append(_T_STR)
        _w_uint(out, len(raw))
        out += raw
    elif type(obj) is bytes:
        out.append(_T_BYTES)
        _w_uint(out, len(obj))
        out += obj
    elif type(obj) is bytearray:
        out.append(_T_BYTEARRAY)
        _w_uint(out, len(obj))
        out += obj
    elif type(obj) is Ent:
        out.append(_T_ENT)
        _w_uint(out, obj.dim)
        _w_int(out, obj.idx)
    elif type(obj) is tuple:
        out.append(_T_TUPLE)
        _w_uint(out, len(obj))
        for item in obj:
            _enc(item, out, state)
    elif type(obj) is list:
        out.append(_T_LIST)
        _w_uint(out, len(obj))
        for item in obj:
            _enc(item, out, state)
    elif type(obj) is dict:
        out.append(_T_DICT)
        _w_uint(out, len(obj))
        for key, value in obj.items():
            _enc(key, out, state)
            _enc(value, out, state)
    elif type(obj) in (set, frozenset):
        # Items are re-sorted by their encoded form so the encoding is a
        # pure function of the set's *contents* (hash order is not).
        out.append(_T_SET if type(obj) is set else _T_FROZENSET)
        _w_uint(out, len(obj))
        encoded = []
        for item in obj:
            piece = bytearray()
            _enc(item, piece, state)
            encoded.append(bytes(piece))
        for piece in sorted(encoded):
            out += piece
    elif isinstance(obj, np.ndarray) and not obj.dtype.hasobject:
        dt = obj.dtype.str.encode("ascii")
        out.append(_T_NDARRAY)
        _w_uint(out, len(dt))
        out += dt
        _w_uint(out, obj.ndim)
        for extent in obj.shape:
            _w_uint(out, extent)
        out += np.ascontiguousarray(obj).tobytes()
    elif isinstance(obj, np.generic) and not np.dtype(obj.dtype).hasobject:
        raw = np.asarray(obj)
        dt = raw.dtype.str.encode("ascii")
        out.append(_T_NPSCALAR)
        _w_uint(out, len(dt))
        out += dt
        out += raw.tobytes()
    else:
        # Escape hatch for exotic types (custom classes, object arrays):
        # a pickled record, flagged in the frame header.
        raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(_T_PICKLE)
        _w_uint(out, len(raw))
        out += raw
        state[0] |= FLAG_PICKLED


def _take(buf, pos: int, n: int) -> Tuple[memoryview, int]:
    if pos + n > len(buf):
        raise CodecError("truncated value")
    return buf[pos:pos + n], pos + n


def _dec(buf, pos: int, end: int) -> Tuple[Any, int]:
    if pos >= end:
        raise CodecError("truncated value stream")
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _r_int(buf, pos, end)
    if tag == _T_FLOAT:
        raw, pos = _take(buf, pos, 8)
        return _F64.unpack(raw)[0], pos
    if tag == _T_STR:
        n, pos = _r_uint(buf, pos, end)
        raw, pos = _take(buf, pos, n)
        return str(raw, "utf-8"), pos
    if tag == _T_BYTES:
        n, pos = _r_uint(buf, pos, end)
        raw, pos = _take(buf, pos, n)
        return bytes(raw), pos
    if tag == _T_BYTEARRAY:
        n, pos = _r_uint(buf, pos, end)
        raw, pos = _take(buf, pos, n)
        return bytearray(raw), pos
    if tag == _T_ENT:
        dim, pos = _r_uint(buf, pos, end)
        idx, pos = _r_int(buf, pos, end)
        return Ent(dim, idx), pos
    if tag in (_T_TUPLE, _T_LIST, _T_SET, _T_FROZENSET):
        n, pos = _r_uint(buf, pos, end)
        items = []
        for _ in range(n):
            item, pos = _dec(buf, pos, end)
            items.append(item)
        if tag == _T_TUPLE:
            return tuple(items), pos
        if tag == _T_LIST:
            return items, pos
        if tag == _T_SET:
            return set(items), pos
        return frozenset(items), pos
    if tag == _T_DICT:
        n, pos = _r_uint(buf, pos, end)
        result: Dict[Any, Any] = {}
        for _ in range(n):
            key, pos = _dec(buf, pos, end)
            value, pos = _dec(buf, pos, end)
            result[key] = value
        return result, pos
    if tag == _T_NDARRAY:
        n, pos = _r_uint(buf, pos, end)
        raw, pos = _take(buf, pos, n)
        dt = np.dtype(str(raw, "ascii"))
        ndim, pos = _r_uint(buf, pos, end)
        shape = []
        for _ in range(ndim):
            extent, pos = _r_uint(buf, pos, end)
            shape.append(extent)
        count = 1
        for extent in shape:
            count *= extent
        arr, pos = _r_array(buf, pos, count, dt)
        # .copy() makes the result writable and independent of the buffer,
        # matching the mutability pickle-delivered arrays always had.
        return arr.reshape(shape).copy(), pos
    if tag == _T_NPSCALAR:
        n, pos = _r_uint(buf, pos, end)
        raw, pos = _take(buf, pos, n)
        dt = np.dtype(str(raw, "ascii"))
        arr, pos = _r_array(buf, pos, 1, dt)
        return arr[0], pos
    if tag == _T_PICKLE:
        n, pos = _r_uint(buf, pos, end)
        raw, pos = _take(buf, pos, n)
        return pickle.loads(raw), pos
    raise CodecError(f"unknown value tag {tag}")


def dumps(obj: Any) -> bytes:
    """Encode one generic value as a kind-0 frame."""
    out = bytearray()
    state = [0]
    _enc(obj, out, state)
    return _frame(KIND_VALUE, state[0], bytes(out))


def loads(data: Any) -> Any:
    """Decode a kind-0 frame; raises :class:`CodecError` on a bad buffer."""
    body = _unframe(data, KIND_VALUE)
    obj, pos = _dec(body, 0, len(body))
    if pos != len(body):
        raise CodecError(f"{len(body) - pos} trailing byte(s) after value")
    return obj


# ---------------------------------------------------------------------------
# kind 1: element closure bundles
# ---------------------------------------------------------------------------

_X_TAGS = 0x01  # bundle carries a ghost tag dict
_X_HOME = 0x02  # bundle carries a ghost home (pid, entity)


def encode_element_batch(bundles: Sequence[dict]) -> bytes:
    """Encode element bundles (``_pack_element`` dicts) as one kind-1 frame.

    The batch interns global ids, classification pairs, vertex records and
    intermediate-entity records across all bundles, so closure entities
    shared between elements bound for the same part are shipped once.
    """
    # First-seen-order interning tables, fully inlined (this is the hot
    # path: one dict probe per gid/classification/vertex/mid occurrence),
    # with the per-bundle wire columns accumulated in the same pass.
    gid_index: Dict[int, int] = {}
    gid_rows: List[int] = []
    class_index: Dict[Tuple[int, int], int] = {}
    class_rows: List[Tuple[int, int]] = []
    vert_index: Dict[tuple, int] = {}
    vert_rows: List[tuple] = []
    mid_index: Dict[tuple, int] = {}
    mid_rows: List[tuple] = []

    bvcounts: List[int] = []
    bvrefs: List[int] = []
    bmcounts: List[int] = []
    bmrefs: List[int] = []
    edims: List[int] = []
    eetypes: List[int] = []
    egrefs: List[int] = []
    ecrefs: List[int] = []
    envs: List[int] = []
    evrefs: List[int] = []
    extras_rows: List[Tuple[int, Any, Any]] = []

    pack3 = _F64X3.pack
    for bundle in bundles:
        nv = 0
        for gid, coords, gclass in bundle["verts"]:
            gref = gid_index.get(gid)
            if gref is None:
                gref = gid_index[gid] = len(gid_rows)
                gid_rows.append(gid)
            if gclass is None:
                cref = 0
            else:
                ckey = (gclass[0], gclass[1])
                cref = class_index.get(ckey)
                if cref is None:
                    cref = class_index[ckey] = len(class_rows)
                    class_rows.append(ckey)
                cref += 1
            # Coordinates are keyed by their packed bytes, so NaN components
            # (never tuple-equal) still intern to one table row.
            key = (gref, pack3(coords[0], coords[1], coords[2]), cref)
            ref = vert_index.get(key)
            if ref is None:
                ref = vert_index[key] = len(vert_rows)
                vert_rows.append(key)
            bvrefs.append(ref)
            nv += 1
        bvcounts.append(nv)

        nm = 0
        for d, gid, etype, vert_gids, gclass in bundle["mids"]:
            if gid is None:
                gref = 0
            else:
                gref = gid_index.get(gid)
                if gref is None:
                    gref = gid_index[gid] = len(gid_rows)
                    gid_rows.append(gid)
                gref += 1
            if gclass is None:
                cref = 0
            else:
                ckey = (gclass[0], gclass[1])
                cref = class_index.get(ckey)
                if cref is None:
                    cref = class_index[ckey] = len(class_rows)
                    class_rows.append(ckey)
                cref += 1
            vg = []
            for g in vert_gids:
                r = gid_index.get(g)
                if r is None:
                    r = gid_index[g] = len(gid_rows)
                    gid_rows.append(g)
                vg.append(r)
            row = (d, gref, etype, tuple(vg), cref)
            ref = mid_index.get(row)
            if ref is None:
                ref = mid_index[row] = len(mid_rows)
                mid_rows.append(row)
            bmrefs.append(ref)
            nm += 1
        bmcounts.append(nm)

        d, gid, etype, vert_gids, gclass = bundle["element"]
        edims.append(d)
        eetypes.append(etype)
        gref = gid_index.get(gid)
        if gref is None:
            gref = gid_index[gid] = len(gid_rows)
            gid_rows.append(gid)
        egrefs.append(gref)
        if gclass is None:
            ecrefs.append(0)
        else:
            ckey = (gclass[0], gclass[1])
            cref = class_index.get(ckey)
            if cref is None:
                cref = class_index[ckey] = len(class_rows)
                class_rows.append(ckey)
            ecrefs.append(cref + 1)
        ne = 0
        for g in vert_gids:
            r = gid_index.get(g)
            if r is None:
                r = gid_index[g] = len(gid_rows)
                gid_rows.append(g)
            evrefs.append(r)
            ne += 1
        envs.append(ne)

        extras = 0
        if "tags" in bundle:
            extras |= _X_TAGS
        if "home" in bundle:
            extras |= _X_HOME
        extras_rows.append((extras, bundle.get("tags"), bundle.get("home")))

    out = bytearray()
    state = [0]
    _w_uint(out, len(extras_rows))

    # Section 1: classification table (zigzag dim, tag pairs).
    _w_uint(out, len(class_rows))
    for dim, tag in class_rows:
        _w_int(out, dim)
        _w_int(out, tag)

    # Section 2: global-id pool (adaptive signed column).
    _w_uint(out, len(gid_rows))
    _w_ints(out, gid_rows)

    # Section 3: vertex table (gid ref, class ref columns + f64 coords).
    _w_uint(out, len(vert_rows))
    _w_uints(out, [row[0] for row in vert_rows])
    _w_uints(out, [row[2] for row in vert_rows])
    for _gref, cbytes, _cref in vert_rows:
        out += cbytes

    # Section 4: intermediate-entity table (columns + CSR vertex refs).
    _w_uint(out, len(mid_rows))
    _w_array(out, [row[0] for row in mid_rows], "u1")
    _w_uints(out, [row[1] for row in mid_rows])
    _w_array(out, [row[2] for row in mid_rows], "u1")
    _w_uints(out, [row[4] for row in mid_rows])
    _w_array(out, [len(row[3]) for row in mid_rows], "u1")
    _w_uints(out, [g for row in mid_rows for g in row[3]])

    # Section 5: per-bundle records (CSR vert/mid refs + element columns).
    _w_uints(out, bvcounts)
    _w_uints(out, bvrefs)
    _w_uints(out, bmcounts)
    _w_uints(out, bmrefs)
    _w_array(out, edims, "u1")
    _w_array(out, eetypes, "u1")
    _w_uints(out, egrefs)
    _w_uints(out, ecrefs)
    _w_array(out, envs, "u1")
    _w_uints(out, evrefs)
    _w_array(out, [row[0] for row in extras_rows], "u1")

    # Section 6: ghost extras, in bundle order (generic-coded tag dicts,
    # LEB-coded home handles).
    for extras, tags, home in extras_rows:
        if extras & _X_TAGS:
            _enc(tags, out, state)
        if extras & _X_HOME:
            pid, ent = home
            _w_uint(out, int(pid))
            _w_uint(out, ent.dim)
            _w_int(out, ent.idx)

    return _frame(KIND_ELEMENTS, state[0], bytes(out))


def decode_element_batch(data: Any) -> List[dict]:
    """Decode a kind-1 frame back into ``_pack_element``-shaped bundles."""
    body = _unframe(data, KIND_ELEMENTS)
    end = len(body)
    pos = 0
    n_bundles, pos = _r_uint(body, pos, end)

    n_classes, pos = _r_uint(body, pos, end)
    class_rows: List[Tuple[int, int]] = []
    for _ in range(n_classes):
        dim, pos = _r_int(body, pos, end)
        tag, pos = _r_int(body, pos, end)
        class_rows.append((dim, tag))

    def check_refs(refs: list, bound: int, what: str) -> None:
        if refs and max(refs) >= bound:
            raise CodecError(f"{what} ref out of range (>= {bound})")

    n_gids, pos = _r_uint(body, pos, end)
    gid_pool, pos = _r_ints(body, pos, n_gids)

    n_verts, pos = _r_uint(body, pos, end)
    vgrefs, pos = _r_uints(body, pos, n_verts)
    vcrefs, pos = _r_uints(body, pos, n_verts)
    coords_col, pos = _r_array(body, pos, 3 * n_verts, "<f8")
    check_refs(vgrefs, n_gids, "vertex gid")
    check_refs(vcrefs, n_classes + 1, "vertex classification")
    coords_rows = coords_col.reshape(n_verts, 3).tolist() if n_verts else []
    vert_rows = [
        (gid_pool[g], tuple(xyz), class_rows[c - 1] if c else None)
        for g, xyz, c in zip(vgrefs, coords_rows, vcrefs)
    ]

    n_mids, pos = _r_uint(body, pos, end)
    mdims, pos = _r_list(body, pos, n_mids, "u1")
    mgrefs, pos = _r_uints(body, pos, n_mids)
    metypes, pos = _r_list(body, pos, n_mids, "u1")
    mcrefs, pos = _r_uints(body, pos, n_mids)
    mnverts, pos = _r_list(body, pos, n_mids, "u1")
    mvrefs, pos = _r_uints(body, pos, sum(mnverts))
    check_refs(mgrefs, n_gids + 1, "mid gid")
    check_refs(mcrefs, n_classes + 1, "mid classification")
    check_refs(mvrefs, n_gids, "mid vertex gid")
    mid_rows = []
    cursor = 0
    for d, gref, et, c, nv in zip(mdims, mgrefs, metypes, mcrefs, mnverts):
        mid_rows.append(
            (
                d,
                gid_pool[gref - 1] if gref else None,
                et,
                tuple([gid_pool[r] for r in mvrefs[cursor:cursor + nv]]),
                class_rows[c - 1] if c else None,
            )
        )
        cursor += nv

    bvcounts, pos = _r_uints(body, pos, n_bundles)
    bvrefs, pos = _r_uints(body, pos, sum(bvcounts))
    bmcounts, pos = _r_uints(body, pos, n_bundles)
    bmrefs, pos = _r_uints(body, pos, sum(bmcounts))
    edims, pos = _r_list(body, pos, n_bundles, "u1")
    eetypes, pos = _r_list(body, pos, n_bundles, "u1")
    egrefs, pos = _r_uints(body, pos, n_bundles)
    ecrefs, pos = _r_uints(body, pos, n_bundles)
    envs, pos = _r_list(body, pos, n_bundles, "u1")
    evrefs, pos = _r_uints(body, pos, sum(envs))
    extras_col, pos = _r_list(body, pos, n_bundles, "u1")
    check_refs(bvrefs, n_verts, "bundle vertex")
    check_refs(bmrefs, n_mids, "bundle mid")
    check_refs(egrefs, n_gids, "element gid")
    check_refs(ecrefs, n_classes + 1, "element classification")
    check_refs(evrefs, n_gids, "element vertex gid")

    bundles: List[dict] = []
    vcur = mcur = ecur = 0
    for i in range(n_bundles):
        nv = bvcounts[i]
        nm = bmcounts[i]
        ne = envs[i]
        c = ecrefs[i]
        bundle = {
            "verts": [vert_rows[r] for r in bvrefs[vcur:vcur + nv]],
            "mids": [mid_rows[r] for r in bmrefs[mcur:mcur + nm]],
            "element": (
                edims[i],
                gid_pool[egrefs[i]],
                eetypes[i],
                tuple([gid_pool[r] for r in evrefs[ecur:ecur + ne]]),
                class_rows[c - 1] if c else None,
            ),
        }
        vcur += nv
        mcur += nm
        ecur += ne
        bundles.append(bundle)

    for i in range(n_bundles):
        extras = int(extras_col[i])
        if extras & _X_TAGS:
            tags, pos = _dec(body, pos, end)
            bundles[i]["tags"] = tags
        if extras & _X_HOME:
            pid, pos = _r_uint(body, pos, end)
            dim, pos = _r_uint(body, pos, end)
            idx, pos = _r_int(body, pos, end)
            bundles[i]["home"] = (pid, Ent(dim, idx))
    if pos != end:
        raise CodecError(f"{end - pos} trailing byte(s) after element batch")
    return bundles


# ---------------------------------------------------------------------------
# kind 2: field-value batches
# ---------------------------------------------------------------------------


def encode_value_batch(items: Sequence[Tuple[Ent, np.ndarray]]) -> bytes:
    """Encode ``(entity, value array)`` pairs as one kind-2 frame.

    Field values are float64 arrays of one shape per field, so the common
    case packs all values as a single stacked ``<f8`` column; heterogeneous
    batches fall back to per-value generic records.
    """
    out = bytearray()
    state = [0]
    _w_uint(out, len(items))
    _w_array(out, [ent.dim for ent, _v in items], "u1")
    _w_ints(out, [ent.idx for ent, _v in items])
    arrays = [np.asarray(value) for _ent, value in items]
    shape = arrays[0].shape if arrays else ()
    homogeneous = all(
        a.dtype == np.float64 and a.shape == shape for a in arrays
    )
    out.append(1 if homogeneous else 0)
    if homogeneous:
        _w_uint(out, len(shape))
        for extent in shape:
            _w_uint(out, extent)
        if arrays:
            stacked = np.ascontiguousarray(
                np.stack(arrays), dtype="<f8"
            )
            out += stacked.tobytes()
    else:
        for value in arrays:
            _enc(value, out, state)
    return _frame(KIND_VALUES, state[0], bytes(out))


def decode_value_batch(data: Any) -> List[Tuple[Ent, np.ndarray]]:
    """Decode a kind-2 frame into ``(entity, writable array)`` pairs."""
    body = _unframe(data, KIND_VALUES)
    end = len(body)
    pos = 0
    count, pos = _r_uint(body, pos, end)
    dims, pos = _r_list(body, pos, count, "u1")
    idxs, pos = _r_ints(body, pos, count)
    if pos >= end and count:
        raise CodecError("truncated value batch")
    if count == 0 and pos == end:
        return []
    homogeneous = body[pos]
    pos += 1
    entities = [Ent(d, i) for d, i in zip(dims, idxs)]
    values: List[np.ndarray]
    if homogeneous:
        ndim, pos = _r_uint(body, pos, end)
        shape = []
        for _ in range(ndim):
            extent, pos = _r_uint(body, pos, end)
            shape.append(extent)
        per_value = 1
        for extent in shape:
            per_value *= extent
        col, pos = _r_array(body, pos, count * per_value, "<f8")
        stacked = col.reshape([count] + shape).copy()
        values = [stacked[i] for i in range(count)]
    else:
        values = []
        for _ in range(count):
            value, pos = _dec(body, pos, end)
            values.append(np.asarray(value))
    if pos != end:
        raise CodecError(f"{end - pos} trailing byte(s) after value batch")
    return list(zip(entities, values))


# ---------------------------------------------------------------------------
# kind 3: ragged integer rows (link-rendezvous batches)
# ---------------------------------------------------------------------------


def encode_int_rows(rows: Sequence[Sequence[int]]) -> bytes:
    """Encode ragged integer rows (CSR lengths + one adaptive column)."""
    out = bytearray()
    _w_uint(out, len(rows))
    _w_uints(out, [len(row) for row in rows])
    _w_ints(out, [value for row in rows for value in row])
    return _frame(KIND_INT_ROWS, 0, bytes(out))


def decode_int_rows(data: Any) -> List[Tuple[int, ...]]:
    """Decode a kind-3 frame back into integer tuples."""
    body = _unframe(data, KIND_INT_ROWS)
    end = len(body)
    pos = 0
    count, pos = _r_uint(body, pos, end)
    lengths, pos = _r_uints(body, pos, count)
    flat, pos = _r_ints(body, pos, sum(lengths))
    if pos != end:
        raise CodecError(f"{end - pos} trailing byte(s) after int rows")
    rows: List[Tuple[int, ...]] = []
    cursor = 0
    for n in lengths:
        rows.append(tuple(flat[cursor:cursor + n]))
        cursor += n
    return rows
