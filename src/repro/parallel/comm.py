"""Simulated MPI communicator with an mpi4py-flavoured interface.

PUMI's parallel control is built on MPI message passing between processes and,
in the two-level design, message passing between threads on a node.  This
module provides :class:`Comm`, a communicator whose interface follows
mpi4py's ``Comm`` for generic Python objects: lowercase ``send``/``recv``/
``bcast``/``gather``/... methods, ``isend``/``irecv`` returning
:class:`Request` handles, ``sendrecv``, ``barrier`` and ``split``.

Ranks are Python threads launched by :func:`repro.parallel.executor.spmd`.
Delivery uses per-rank mailboxes guarded by condition variables, with MPI
matching semantics (earliest message matching ``(source, tag)`` wins, with
``ANY_SOURCE``/``ANY_TAG`` wildcards).  Traffic is charged to the shared
performance counters and classified on/off-node through the machine topology,
so the hybrid-communication experiments can compare both kinds of traffic.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..analysis.sanitizers import (
    CollectiveMismatchError,
    DeadlockError,
    format_wait_cycle,
    freeze,
    sanitize_default,
)
from ..obs.tracer import Tracer, current as current_tracer
from .perf import PerfCounters, GLOBAL
from .topology import MachineTopology, flat

#: Wildcard source for :meth:`Comm.recv`.
ANY_SOURCE = -1
#: Wildcard tag for :meth:`Comm.recv`.
ANY_TAG = -1
#: Internal wildcard matching any *user* tag but no collective-channel tag.
_ANY_USER_TAG = ("any-user-tag",)

_Key = Tuple[Hashable, int, Hashable]  # (context id, source, tag)


class CommTimeoutError(RuntimeError):
    """A blocking receive waited longer than the world's deadlock timeout."""


class CommAbortedError(RuntimeError):
    """The world was aborted (another rank failed) while blocked in recv."""


class _Mailbox:
    """One rank's incoming-message store with MPI matching semantics."""

    def __init__(self, world: "CommWorld", rank: int) -> None:
        self._cond = threading.Condition()
        self._messages: List[Tuple[Hashable, int, Hashable, Any]] = []
        self._world = world
        self._rank = rank
        self._abort = world._abort

    def deliver(self, ctx: Hashable, src: int, tag: Hashable, payload: Any) -> None:
        with self._cond:
            self._messages.append((ctx, src, tag, payload))
            self._cond.notify_all()

    def wake(self) -> None:
        """Wake any blocked receiver so it can observe an abort."""
        with self._cond:
            self._cond.notify_all()

    def _match(self, ctx: Hashable, source: int, tag: Hashable) -> Optional[int]:
        for i, (mctx, msrc, mtag, _payload) in enumerate(self._messages):
            if mctx != ctx:
                continue
            if source != ANY_SOURCE and msrc != source:
                continue
            if tag == _ANY_USER_TAG:
                # Match any user-channel tag but never a collective-channel
                # message: a wildcard recv must not steal collective traffic.
                if not (isinstance(mtag, tuple) and mtag and mtag[0] == 0):
                    continue
            elif tag != ANY_TAG and mtag != tag:
                continue
            return i
        return None

    def take(
        self,
        ctx: Hashable,
        source: int,
        tag: Hashable,
        timeout: Optional[float],
    ) -> Tuple[int, Hashable, Any]:
        """Block until a matching message arrives; return (src, tag, payload).

        Under sanitize mode, a receive with a concrete source registers a
        wait-for edge in the world's graph before blocking; the registration
        that closes a cycle raises :class:`DeadlockError` immediately instead
        of letting every rank in the cycle run into the timeout.
        """
        # Only a receive naming a concrete source forms a definite wait-for
        # edge (an ANY_SOURCE receive can be satisfied by anyone).
        detect = self._world.sanitize and source != ANY_SOURCE
        registered = False
        try:
            while True:
                with self._cond:
                    index = self._match(ctx, source, tag)
                    if index is not None:
                        _ctx, msrc, mtag, payload = self._messages.pop(index)
                        return msrc, mtag, payload
                    if self._abort.is_set():
                        raise CommAbortedError(
                            "communication world aborted while waiting in recv"
                        )
                if detect and not registered:
                    # Register outside our own condition lock so cycle
                    # verification can probe other mailboxes without a
                    # lock-order inversion.
                    cycle = self._world._register_wait(
                        self._rank, ctx, source, tag
                    )
                    registered = True
                    if cycle is not None:
                        raise DeadlockError(
                            "deadlock detected among blocking receives: "
                            + format_wait_cycle(cycle)
                        )
                with self._cond:
                    # Re-check: a message may have landed between the locks.
                    if (
                        self._match(ctx, source, tag) is None
                        and not self._abort.is_set()
                    ):
                        if not self._cond.wait(timeout=timeout):
                            raise CommTimeoutError(
                                f"recv(source={source}, tag={tag}) timed out "
                                f"after {timeout}s — likely deadlock in the "
                                f"rank program"
                            )
        finally:
            if registered:
                self._world._clear_wait(self._rank)

    def probe(self, ctx: Hashable, source: int, tag: Hashable) -> bool:
        with self._cond:
            return self._match(ctx, source, tag) is not None


class CommWorld:
    """Shared state for one SPMD execution: mailboxes, topology, counters."""

    def __init__(
        self,
        size: int,
        topology: Optional[MachineTopology] = None,
        counters: Optional[PerfCounters] = None,
        copy_off_node: bool = True,
        timeout: Optional[float] = 60.0,
        sanitize: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"world size must be positive, got {size}")
        self.size = size
        self.topology = topology if topology is not None else flat(size)
        if self.topology.total_cores < size:
            raise ValueError(
                f"topology provides {self.topology.total_cores} processing "
                f"units but the world needs {size}"
            )
        self.counters = counters if counters is not None else GLOBAL
        self.copy_off_node = copy_off_node
        self.timeout = timeout
        self.sanitize = sanitize_default() if sanitize is None else bool(sanitize)
        #: Observability hook; ``None`` resolves to the installed default
        #: tracer (see :func:`repro.obs.install`), normally also ``None``.
        self.tracer = tracer if tracer is not None else current_tracer()
        self._abort = threading.Event()
        # Collective-order sanitizer: (ctx, seq) -> (op kind, first rank).
        self._collective_lock = threading.Lock()
        self._collective_ledger: Dict[Tuple[Hashable, int], Tuple[str, int]] = {}
        # Deadlock detector: world rank -> (ctx, source, tag) it blocks on.
        self._wait_lock = threading.Lock()
        self._waiting: Dict[int, Tuple[Hashable, int, Hashable]] = {}
        self.mailboxes = [_Mailbox(self, rank) for rank in range(size)]

    def abort(self) -> None:
        """Wake every blocked receiver with :class:`CommAbortedError`."""
        self._abort.set()
        for mailbox in self.mailboxes:
            mailbox.wake()

    @property
    def aborted(self) -> bool:
        """True once :meth:`abort` has been called."""
        return self._abort.is_set()

    def transmit(
        self, ctx: Hashable, src: int, dst: int, tag: Hashable, payload: Any
    ) -> None:
        if not 0 <= dst < self.size:
            raise ValueError(f"destination rank {dst} out of range [0, {self.size})")
        by_reference = True
        nbytes = 0
        if src == dst:
            self.counters.add("comm.messages.self")
        elif self.topology.same_node(src, dst):
            self.counters.add("comm.messages.on_node")
        else:
            self.counters.add("comm.messages.off_node")
            # Serialize once; the buffer serves both the byte charge and
            # the copy-isolated delivery.
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            nbytes = len(blob)
            self.counters.add("comm.bytes.off_node", nbytes)
            if self.copy_off_node:
                payload = pickle.loads(blob)
                by_reference = False
        if self.tracer is not None:
            # Rank-to-rank traffic lands in the tracer's in-progress
            # superstep (advanced by BSP exchanges, if any run alongside).
            self.tracer.on_message(src, dst, nbytes)
        if self.sanitize and by_reference:
            # Alias sanitizer: the receiver would share the sender's object;
            # deliver a read-only view that raises on mutation instead.
            payload = freeze(payload)
        self.mailboxes[dst].deliver(ctx, src, tag, payload)

    # -- sanitizer hooks ---------------------------------------------------

    def check_collective(
        self, ctx: Hashable, seq: int, kind: str, rank: int
    ) -> None:
        """Collective-order sanitizer: cross-check op kind at (ctx, seq).

        The ledger grows by one small entry per collective call; sanitize
        mode is a debugging tool, not a production configuration, so the
        memory is accepted for the precision.
        """
        key = (ctx, seq)
        with self._collective_lock:
            previous = self._collective_ledger.get(key)
            if previous is None:
                self._collective_ledger[key] = (kind, rank)
                return
            prev_kind, prev_rank = previous
        if prev_kind != kind:
            raise CollectiveMismatchError(
                f"collective order mismatch on communicator ctx={ctx!r}: "
                f"rank {rank} entered {kind!r} as collective #{seq} but "
                f"rank {prev_rank} entered {prev_kind!r}"
            )

    def _register_wait(
        self, rank: int, ctx: Hashable, source: int, tag: Hashable
    ) -> Optional[List[Tuple[int, Tuple[Hashable, int, Hashable]]]]:
        """Record ``rank`` blocking on ``source``; return a wait cycle if any.

        Cycle verification re-probes every member's mailbox: a stale edge
        whose message has since arrived is not a deadlock (that rank will
        wake and drain it), so a cycle is only reported when no member can
        make progress.  Lock order is always wait-lock -> mailbox condition,
        and the caller never holds its own mailbox condition here.
        """
        with self._wait_lock:
            self._waiting[rank] = (ctx, source, tag)
            chain = [rank]
            seen = {rank}
            current = source
            while True:
                if current in seen and current != rank:
                    # A cycle that does not include us: its members raced a
                    # pending delivery when they registered; leave it to the
                    # timeout backstop rather than looping forever here.
                    return None
                if current == rank:
                    cycle = [(r, self._waiting[r]) for r in chain]
                    for member, (mctx, msrc, mtag) in cycle:
                        if self.mailboxes[member].probe(mctx, msrc, mtag):
                            return None
                    return cycle
                entry = self._waiting.get(current)
                if entry is None:
                    return None
                chain.append(current)
                seen.add(current)
                current = entry[1]

    def _clear_wait(self, rank: int) -> None:
        with self._wait_lock:
            self._waiting.pop(rank, None)


class Request:
    """Handle for a non-blocking operation, in the style of ``MPI.Request``."""

    def __init__(self, wait_fn: Optional[Callable[[], Any]] = None, value: Any = None):
        self._wait_fn = wait_fn
        self._value = value
        self._done = wait_fn is None

    def wait(self) -> Any:
        """Block until completion; returns the received object for irecv."""
        if not self._done:
            assert self._wait_fn is not None
            self._value = self._wait_fn()
            self._done = True
        return self._value

    def test(self) -> Tuple[bool, Any]:
        """Non-destructively report completion; completes if possible."""
        if self._done:
            return True, self._value
        return False, None


class Comm:
    """A communicator over a group of ranks of a :class:`CommWorld`.

    ``group`` maps communicator-local ranks to world ranks; the default
    world communicator is the identity group.  Sub-communicators created by
    :meth:`split` carry a distinct context id so their traffic never matches
    receives posted on the parent.
    """

    def __init__(
        self,
        world: CommWorld,
        rank: int,
        group: Optional[List[int]] = None,
        ctx: Hashable = 0,
    ) -> None:
        self.world = world
        self._group = group if group is not None else list(range(world.size))
        if rank not in self._group:
            raise ValueError(f"world rank {rank} is not in communicator group")
        self._world_rank = rank
        self._ctx = ctx
        self._collective_seq = 0
        self._split_seq = 0

    # -- introspection ---------------------------------------------------

    @property
    def rank(self) -> int:
        """Communicator-local rank of the calling thread."""
        return self._group.index(self._world_rank)

    @property
    def size(self) -> int:
        return len(self._group)

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py spelling
        return self.rank

    def Get_size(self) -> int:  # noqa: N802 - mpi4py spelling
        return self.size

    def world_rank_of(self, local_rank: int) -> int:
        return self._group[local_rank]

    @property
    def topology(self) -> MachineTopology:
        return self.world.topology

    @property
    def counters(self) -> PerfCounters:
        return self.world.counters

    # -- point to point --------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send of a Python object (never blocks)."""
        self.world.transmit(
            self._ctx, self._world_rank, self._group[dest], (0, tag), obj
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; earliest matching message wins."""
        world_source = ANY_SOURCE if source == ANY_SOURCE else self._group[source]
        match_tag: Hashable = _ANY_USER_TAG if tag == ANY_TAG else (0, tag)
        _src, _tag, payload = self.world.mailboxes[self._world_rank].take(
            self._ctx, world_source, match_tag, self.world.timeout
        )
        return payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request(value=None)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return Request(wait_fn=lambda: self.recv(source, tag))

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
    ) -> Any:
        self.send(sendobj, dest, sendtag)
        return self.recv(source, recvtag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check whether a matching message is waiting."""
        world_source = ANY_SOURCE if source == ANY_SOURCE else self._group[source]
        match_tag: Hashable = _ANY_USER_TAG if tag == ANY_TAG else (0, tag)
        return self.world.mailboxes[self._world_rank].probe(
            self._ctx, world_source, match_tag
        )

    # -- internal point-to-point on a reserved tag channel ---------------

    def _csend(self, obj: Any, dest: int, kind: str, seq: int, round_: int = 0) -> None:
        self.world.transmit(
            self._ctx, self._world_rank, self._group[dest], (1, kind, seq, round_), obj
        )

    def _crecv(self, source: int, kind: str, seq: int, round_: int = 0) -> Any:
        world_source = ANY_SOURCE if source == ANY_SOURCE else self._group[source]
        _src, _tag, payload = self.world.mailboxes[self._world_rank].take(
            self._ctx, world_source, (1, kind, seq, round_), self.world.timeout
        )
        return payload

    def _next_seq(self) -> int:
        seq = self._collective_seq
        self._collective_seq += 1
        return seq

    def _sanitize_collective(self, kind: str, seq: int) -> None:
        """Collective-order sanitizer entry; no-op unless sanitize mode."""
        if self.world.sanitize:
            self.world.check_collective(self._ctx, seq, kind, self.rank)

    # -- collectives (implemented in collectives.py) ----------------------

    def barrier(self) -> None:
        from . import collectives

        collectives.barrier(self)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        from . import collectives

        return collectives.bcast(self, obj, root)

    def scatter(self, sendobj: Optional[List[Any]], root: int = 0) -> Any:
        from . import collectives

        return collectives.scatter(self, sendobj, root)

    def gather(self, sendobj: Any, root: int = 0) -> Optional[List[Any]]:
        from . import collectives

        return collectives.gather(self, sendobj, root)

    def allgather(self, sendobj: Any) -> List[Any]:
        from . import collectives

        return collectives.allgather(self, sendobj)

    def reduce(
        self, sendobj: Any, op: Optional[Callable[[Any, Any], Any]] = None, root: int = 0
    ) -> Any:
        from . import collectives

        return collectives.reduce(self, sendobj, op, root)

    def allreduce(self, sendobj: Any, op: Optional[Callable[[Any, Any], Any]] = None) -> Any:
        from . import collectives

        return collectives.allreduce(self, sendobj, op)

    def alltoall(self, sendobjs: List[Any]) -> List[Any]:
        from . import collectives

        return collectives.alltoall(self, sendobjs)

    def scan(self, sendobj: Any, op: Optional[Callable[[Any, Any], Any]] = None) -> Any:
        from . import collectives

        return collectives.scan(self, sendobj, op)

    def exscan(self, sendobj: Any, op: Optional[Callable[[Any, Any], Any]] = None) -> Any:
        from . import collectives

        return collectives.exscan(self, sendobj, op)

    # -- communicator management -----------------------------------------

    def split(self, color: int, key: Optional[int] = None) -> "Comm":
        """Collectively split into sub-communicators by ``color``.

        Ranks passing the same color form one new communicator, ordered by
        ``key`` (defaulting to current rank) with rank as tie-break, exactly
        like ``MPI_Comm_split``.
        """
        if key is None:
            key = self.rank
        entries = self.allgather((color, key, self.rank))
        seq = self._split_seq
        self._split_seq += 1
        members = sorted(
            (k, r) for (c, k, r) in entries if c == color
        )
        group = [self._group[r] for (_k, r) in members]
        new_ctx = (self._ctx, "split", seq, color)
        return Comm(self.world, self._world_rank, group, new_ctx)

    def dup(self) -> "Comm":
        """Duplicate this communicator with a fresh context."""
        return self.split(color=0, key=self.rank)

    def node_comm(self) -> "Comm":
        """Sub-communicator of the ranks sharing this rank's node."""
        return self.split(color=self.topology.node_of(self._world_rank))

    def leader_comm(self) -> Optional["Comm"]:
        """Sub-communicator of node leaders; None on non-leader ranks."""
        is_leader = self.topology.is_node_leader(self._world_rank)
        comm = self.split(color=0 if is_leader else 1)
        return comm if is_leader else None
