"""Deterministic bulk-synchronous (BSP) message network between parts.

Distributed-mesh operations in this reproduction (migration, ghosting, field
synchronization, ParMA diffusion) are written as *supersteps*: every part
performs local computation and posts messages, then a collective
:meth:`Network.exchange` delivers all posted messages at once.  This mirrors
the neighborhood-exchange communication pattern PUMI's message-passing control
implements on MPI, while remaining single-process and fully deterministic.

The network charges every message to the shared performance counters and,
when built with a :class:`~repro.parallel.topology.MachineTopology`,
classifies traffic as on-node (shared memory: implicit copies in the paper's
architecture-aware representation) versus off-node (explicit, serialized
messages in distributed memory).  Off-node messages are size-accounted by
the network's wire codec — the compact binary format of
:mod:`repro.parallel.codec` by default, or pickle (the wire format mpi4py
uses for generic objects) behind the ``codec="pickle"`` escape hatch —
while on-node messages are passed by reference and charged zero wire bytes,
which is precisely the memory/communication saving the two-level design
targets.  Pre-encoded ``bytes`` payloads (the services' coalesced batches)
are charged their own length and never re-serialized.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.sanitizers import freeze, sanitize_default
from ..obs.tracer import Tracer
from . import codec as _codec
from .perf import PerfCounters, GLOBAL
from .topology import MachineTopology, flat

#: A delivered message: (source part, tag, payload).
Message = Tuple[int, int, Any]

#: Wire codecs the network accepts.
CODECS = ("binary", "pickle")


def wire_size(payload: Any, codec: str = "pickle") -> int:
    """Number of bytes ``payload`` occupies when serialized for the wire.

    Pre-encoded buffers (``bytes``/``bytearray``) are charged their own
    length under either codec; other payloads are serialized with the
    requested codec (``"pickle"``, the historical default, or ``"binary"``
    for the compact :mod:`repro.parallel.codec` format).
    """
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if codec == "binary":
        return len(_codec.dumps(payload))
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


class Network:
    """A deterministic message exchange fabric between ``nparts`` endpoints.

    Usage is two-phase per superstep: each part calls :meth:`post` any number
    of times, then one caller invokes :meth:`exchange`, which returns the
    complete inbox of every part and resets the posting buffers.  Delivery
    order is deterministic: sorted by (source, posting sequence).

    Parameters
    ----------
    nparts:
        Number of endpoints (parts or ranks).
    topology:
        Machine model used to classify on/off-node traffic.  Defaults to a
        flat machine (every pair of endpoints off-node).
    counters:
        Performance-counter registry; defaults to the module-global one.
    copy_off_node:
        When true (default), off-node payloads are round-tripped through
        pickle so that sender and receiver never alias mutable state — the
        distributed-memory semantics real MPI provides.  On-node payloads are
        always shared by reference (the paper's implicit shared-memory
        representation).
    sanitize:
        Alias-sanitizer mode: payloads that would be delivered by reference
        are wrapped in read-only freeze proxies that raise
        :class:`~repro.analysis.sanitizers.PayloadAliasError` on mutation.
        Defaults to the ``REPRO_SANITIZE`` environment variable.
    codec:
        Wire serialization used for off-node byte accounting and copy
        isolation: ``"binary"`` (default) uses the compact
        :mod:`repro.parallel.codec` format, ``"pickle"`` is the historical
        escape hatch kept for A/B measurement.  Payloads that are already
        ``bytes`` (pre-encoded batches) are charged their own length and
        delivered as-is under either codec.
    tracer:
        Optional :class:`~repro.obs.Tracer`; when attached and enabled,
        every exchange closes one traced superstep and charges each
        delivered message to the per-superstep part-to-part communication
        matrix.  ``None`` (the default) costs one branch per exchange.
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector`.  When attached,
        :meth:`post` routes every message through the injector (which may
        drop, duplicate, corrupt or delay it) and :meth:`exchange` gives the
        injector a superstep boundary: scheduled rank crashes raise
        :class:`~repro.resilience.InjectedRankFailure` here, and delayed
        messages whose release superstep arrived are re-enqueued.  ``None``
        (the default) costs one branch per post/exchange.
    """

    def __init__(
        self,
        nparts: int,
        topology: Optional[MachineTopology] = None,
        counters: Optional[PerfCounters] = None,
        copy_off_node: bool = True,
        codec: str = "binary",
        sanitize: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        fault_injector: Optional[Any] = None,
    ) -> None:
        if nparts < 1:
            raise ValueError(f"need at least one part, got {nparts}")
        if codec not in CODECS:
            raise ValueError(f"unknown codec {codec!r} (expected {CODECS})")
        self.nparts = nparts
        self.topology = topology if topology is not None else flat(nparts)
        if self.topology.total_cores < nparts:
            raise ValueError(
                f"topology has {self.topology.total_cores} processing units "
                f"but the network needs {nparts}"
            )
        self.counters = counters if counters is not None else GLOBAL
        self.copy_off_node = copy_off_node
        self.codec = codec
        self.sanitize = sanitize_default() if sanitize is None else bool(sanitize)
        self.tracer = tracer
        self.fault_injector = fault_injector
        # Posting may happen from concurrent rank threads (the Comm ranks of
        # an spmd() job all share one part network), so the outbox and its
        # sequence stamp are guarded by a lock.
        self._lock = threading.Lock()
        self._outbox: List[Tuple[int, int, int, int, Any]] = []  # (src,dst,seq,tag,payload)
        self._seq = 0
        self.rounds = 0

    def post(self, src: int, dst: int, tag: int, payload: Any) -> None:
        """Queue one message from part ``src`` to part ``dst``.

        Thread-safe; each message is stamped with a global posting sequence
        number so :meth:`exchange` can deliver in (source, sequence) order.
        With a fault injector attached the message may be dropped,
        duplicated, corrupted, or held back for later supersteps.
        """
        self._check(src)
        self._check(dst)
        injector = self.fault_injector
        if injector is None:
            with self._lock:
                seq = self._seq
                self._seq += 1
                self._outbox.append((src, dst, seq, tag, payload))
            return
        messages = injector.on_post(src, dst, tag, payload)
        with self._lock:
            for m_src, m_dst, m_tag, m_payload in messages:
                seq = self._seq
                self._seq += 1
                self._outbox.append((m_src, m_dst, seq, m_tag, m_payload))

    def pending(self) -> int:
        """Number of messages posted since the last exchange."""
        with self._lock:
            return len(self._outbox)

    def exchange(self) -> Dict[int, List[Message]]:
        """Deliver all posted messages; returns ``{dst: [(src, tag, payload)]}``.

        Every destination part appears in the result (possibly with an empty
        inbox) so BSP loops need no key-existence checks.  Each inbox is
        sorted by (source part, posting sequence): messages from a lower
        source part come first, and messages from the same source arrive in
        the order it posted them — regardless of how posting interleaved
        across threads.

        With a fault injector attached this is the superstep boundary: a
        ``crash`` fault scheduled for the completing superstep raises
        :class:`~repro.resilience.InjectedRankFailure` before anything is
        delivered, and previously delayed messages whose release superstep
        arrived join this delivery.
        """
        injector = self.fault_injector
        if injector is not None:
            released = injector.on_exchange()  # may raise InjectedRankFailure
            if released:
                with self._lock:
                    for m_src, m_dst, m_tag, m_payload in released:
                        seq = self._seq
                        self._seq += 1
                        self._outbox.append(
                            (m_src, m_dst, seq, m_tag, m_payload)
                        )
        with self._lock:
            outbox = self._outbox
            self._outbox = []
        outbox.sort(key=lambda message: (message[0], message[2]))
        tracer = self.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        inboxes: Dict[int, List[Message]] = {p: [] for p in range(self.nparts)}
        for src, dst, _seq, tag, payload in outbox:
            on_node = self.topology.same_node(src, dst)
            by_reference = True
            nbytes = 0
            if src == dst:
                self.counters.add("net.messages.self")
            elif on_node:
                self.counters.add("net.messages.on_node")
            else:
                self.counters.add("net.messages.off_node")
                # Serialize once; the same buffer provides the byte charge
                # and (when copying) the isolated delivery object.
                if isinstance(payload, (bytes, bytearray)):
                    # Pre-encoded batch: charged at face value, delivered
                    # as-is (bytes are immutable, so no aliasing hazard).
                    nbytes = len(payload)
                    self.counters.add("net.bytes.off_node", nbytes)
                    if self.copy_off_node:
                        payload = bytes(payload)
                        by_reference = False
                elif self.codec == "binary":
                    blob = _codec.dumps(payload)
                    nbytes = len(blob)
                    self.counters.add("net.bytes.off_node", nbytes)
                    if self.copy_off_node:
                        payload = _codec.loads(blob)
                        by_reference = False
                else:
                    blob = pickle.dumps(
                        payload, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    nbytes = len(blob)
                    self.counters.add("net.bytes.off_node", nbytes)
                    if self.copy_off_node:
                        payload = pickle.loads(blob)
                        by_reference = False
            if tracer is not None:
                tracer.on_message(src, dst, nbytes)
            if self.sanitize and by_reference:
                # Alias sanitizer: by-reference delivery shares the sender's
                # object; hand out a read-only proxy instead.
                payload = freeze(payload)
            inboxes[dst].append((src, tag, payload))
        self.rounds += 1
        self.counters.add("net.exchanges")
        if tracer is not None:
            tracer.end_superstep()
        if injector is not None:
            injector.end_superstep()
        return inboxes

    def neighbor_counts(self) -> Dict[int, int]:
        """Messages currently queued per destination (diagnostics)."""
        counts: Dict[int, int] = {}
        with self._lock:
            outbox = list(self._outbox)
        for _src, dst, _seq, _tag, _payload in outbox:
            counts[dst] = counts.get(dst, 0) + 1
        return counts

    def stats(self) -> Dict[str, int]:
        """Cumulative traffic statistics snapshot."""
        return {
            "exchanges": self.counters.get("net.exchanges"),
            "messages_self": self.counters.get("net.messages.self"),
            "messages_on_node": self.counters.get("net.messages.on_node"),
            "messages_off_node": self.counters.get("net.messages.off_node"),
            "bytes_off_node": self.counters.get("net.bytes.off_node"),
        }

    def _check(self, part: int) -> None:
        if not 0 <= part < self.nparts:
            raise ValueError(f"part {part} out of range [0, {self.nparts})")
