"""Sparse neighbor exchange (PCU-style) for SPMD rank programs.

PUMI's message-passing control performs "neighboring part recognition" and
exchanges messages only with neighbors.  The rank-program analogue here is
:func:`neighbor_exchange`: every rank passes a ``{destination: payload-list}``
map and receives the union of everything addressed to it, without knowing the
senders ahead of time.

Two implementations are provided:

* :func:`neighbor_exchange` — count-then-send: an ``alltoall`` of message
  counts tells each rank how many point-to-point messages to expect, then
  payloads travel as individual messages.  This is the classic sparse
  exchange and what the function name promises.
* :func:`dense_exchange` — a plain personalized ``alltoall`` used as a
  reference implementation for testing the sparse one.
"""

from __future__ import annotations

from typing import Any, Dict, List


def dense_exchange(comm, outgoing: Dict[int, List[Any]]) -> Dict[int, List[Any]]:
    """Reference exchange via alltoall; O(P) traffic per rank."""
    slots: List[List[Any]] = [[] for _ in range(comm.size)]
    for dest, payloads in outgoing.items():
        slots[dest] = list(payloads)
    arrived = comm.alltoall(slots)
    return {src: msgs for src, msgs in enumerate(arrived) if msgs}


def neighbor_exchange(
    comm, outgoing: Dict[int, List[Any]], tag: int = 714
) -> Dict[int, List[Any]]:
    """Sparse exchange: returns ``{source: [payloads]}`` for this rank.

    The caller provides ``{destination: [payloads]}``.  Message counts are
    distributed with one alltoall (the "neighbor recognition" step); only
    actual payloads are then sent point-to-point, so payload traffic is
    proportional to the true neighborhood size.
    """
    counts = [0] * comm.size
    for dest, payloads in outgoing.items():
        if not 0 <= dest < comm.size:
            raise ValueError(f"destination {dest} out of range [0, {comm.size})")
        counts[dest] = len(payloads)
    expected = comm.alltoall(counts)

    for dest, payloads in outgoing.items():
        for payload in payloads:
            comm.send(payload, dest, tag=tag)

    received: Dict[int, List[Any]] = {}
    for src, count in enumerate(expected):
        if count == 0:
            continue
        bucket = received.setdefault(src, [])
        for _ in range(count):
            bucket.append(comm.recv(source=src, tag=tag))
    return received
