"""Parallel control substrate: simulated MPI, BSP network, topology, perf.

This package is the reproduction's stand-in for PUMI's "Parallel Control"
component (Fig. 1 of the paper): communicators, collectives, neighbor
exchange, architecture topology, message routing, and performance counters.
"""

from ..analysis.sanitizers import (
    CollectiveMismatchError,
    DeadlockError,
    PayloadAliasError,
    SanitizerError,
)
from . import codec
from .codec import CodecError
from .detect import detect, virtual
from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    CommAbortedError,
    CommTimeoutError,
    CommWorld,
    Request,
)
from .executor import RankFailure, SpmdError, spmd
from .neighbors import dense_exchange, neighbor_exchange
from .network import CODECS, Message, Network, wire_size
from .perf import GLOBAL, PerfCounters, TimerStat
from .routing import BufferedRouter, NodeRouter
from .sf import (
    BUNDLES,
    GENERIC,
    INT_ROWS,
    OPS,
    VALUES,
    SFComm,
    SFDatatype,
    StarForest,
)
from .topology import (
    CoreLedger,
    CoreSlot,
    MachineTopology,
    PlacedTopology,
    TopologyError,
    flat,
    single_node,
)
from .twolevel import TwoLevelComm

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BUNDLES",
    "BufferedRouter",
    "CODECS",
    "CodecError",
    "CollectiveMismatchError",
    "Comm",
    "CoreLedger",
    "CoreSlot",
    "CommAbortedError",
    "CommTimeoutError",
    "CommWorld",
    "DeadlockError",
    "GENERIC",
    "INT_ROWS",
    "OPS",
    "PayloadAliasError",
    "SanitizerError",
    "GLOBAL",
    "MachineTopology",
    "Message",
    "Network",
    "NodeRouter",
    "PerfCounters",
    "PlacedTopology",
    "RankFailure",
    "Request",
    "SFComm",
    "SFDatatype",
    "SpmdError",
    "StarForest",
    "VALUES",
    "TimerStat",
    "TopologyError",
    "TwoLevelComm",
    "codec",
    "dense_exchange",
    "detect",
    "flat",
    "neighbor_exchange",
    "single_node",
    "spmd",
    "virtual",
    "wire_size",
]
