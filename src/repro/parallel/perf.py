"""Performance measurement utilities (run-time and memory usage counters).

The paper (Section II-D) lists "performance measurement: run-time and memory
usage counter" among PUMI's parallel control functionalities.  This module
provides a small, thread-safe counter registry used by every other subsystem:
the simulated network counts messages and bytes here, migration counts moved
entities, and the benchmark harness reads the totals.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class TimerStat:
    """Accumulated wall-clock statistics for one named timer."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def record(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Optional[float]]:
        """Strict-JSON-safe form: a never-fired timer's ``min`` is ``None``.

        ``min`` starts at ``float("inf")`` so :meth:`record` can take
        minima, but ``inf`` serializes as the invalid-JSON token
        ``Infinity``; exporters must go through this method.
        """
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": None if self.count == 0 else self.min,
            "max": self.max,
        }


class PerfCounters:
    """Thread-safe registry of named counters and timers.

    Counters are plain integers incremented with :meth:`add`; timers are
    accumulated wall-clock intervals recorded with the :meth:`timer` context
    manager.  A single instance may be shared by many simulated ranks.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, TimerStat] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (creates it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        with self._lock:
            return dict(self._counters)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager recording one wall-clock interval under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                stat = self._timers.get(name)
                if stat is None:
                    stat = self._timers[name] = TimerStat()
                stat.record(elapsed)

    def register_timer(self, name: str) -> TimerStat:
        """Pre-declare a timer (count 0) so reports list it even if unused."""
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            return stat

    def timer_stat(self, name: str) -> Optional[TimerStat]:
        with self._lock:
            return self._timers.get(name)

    def timers(self) -> Dict[str, TimerStat]:
        with self._lock:
            return dict(self._timers)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()

    def merge(self, other: "PerfCounters") -> None:
        """Fold another registry's counters and timers into this one."""
        for name, value in other.counters().items():
            self.add(name, value)
        with self._lock:
            for name, stat in other.timers().items():
                mine = self._timers.get(name)
                if mine is None:
                    mine = self._timers[name] = TimerStat()
                mine.count += stat.count
                mine.total += stat.total
                mine.min = min(mine.min, stat.min)
                mine.max = max(mine.max, stat.max)

    def report(self) -> str:
        """Human-readable multi-line report of counters then timers."""
        lines = []
        for name in sorted(self.counters()):
            lines.append(f"{name}: {self.get(name)}")
        for name, stat in sorted(self.timers().items()):
            lines.append(
                f"{name}: n={stat.count} total={stat.total:.6f}s "
                f"mean={stat.mean:.6f}s max={stat.max:.6f}s"
            )
        return "\n".join(lines)


#: Default shared registry used when callers do not supply their own.
GLOBAL = PerfCounters()
