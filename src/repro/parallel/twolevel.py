"""Two-level (hybrid MPI/thread) communication for SPMD rank programs.

Section II-D of the paper describes a two-level mesh partitioning in which
"communications are done through MPI message passing between off-node parts
and inter-thread message passing between on-node parts", with each MPI
process mapped to a node and each thread to a core.  In this simulation every
rank is a thread already; :class:`TwoLevelComm` makes the hierarchy explicit:

* an *on-node* communicator connecting the ranks of one node (inter-thread
  message passing — cheap, shared memory),
* a *leader* communicator connecting node leaders (MPI between nodes), and
* :meth:`exchange`, a hybrid neighbor exchange that ships every off-node
  payload through the two leaders so that inter-node traffic is coalesced.

Because PUMI's "inter-thread message passing capability allows existing
MPI-based partitioning algorithms to be used for the multi-threaded phase",
the on-node communicator here is a full :class:`~repro.parallel.comm.Comm` —
any SPMD algorithm runs unchanged on it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .comm import Comm
from .neighbors import neighbor_exchange


class TwoLevelComm:
    """Hybrid view of a world communicator split by machine topology."""

    def __init__(self, comm: Comm) -> None:
        self.comm = comm
        topo = comm.topology
        self.node = topo.node_of(comm.world_rank_of(comm.rank))
        self.core = topo.core_of(comm.world_rank_of(comm.rank))
        #: Inter-thread communicator among this node's ranks.
        self.node_comm: Comm = comm.node_comm()
        #: Inter-node communicator among leaders (None off-leader).
        self.leader_comm: Optional[Comm] = comm.leader_comm()

    @property
    def is_leader(self) -> bool:
        return self.leader_comm is not None

    @property
    def nodes(self) -> int:
        return self.comm.topology.nodes

    def node_of(self, rank: int) -> int:
        """Node hosting world ``rank`` of the wrapped communicator."""
        return self.comm.topology.node_of(self.comm.world_rank_of(rank))

    # -- hybrid neighbor exchange -----------------------------------------

    def exchange(self, outgoing: Dict[int, List[Any]]) -> Dict[int, List[Any]]:
        """Hybrid sparse exchange returning ``{source_rank: [payloads]}``.

        On-node destinations are served by inter-thread message passing on
        ``node_comm``.  Off-node payloads are gathered to this node's leader,
        shipped leader-to-leader as one bundle per destination node, and
        fanned out by the destination leader — three hops, of which only the
        middle one crosses nodes.
        """
        my_rank = self.comm.rank
        local: Dict[int, List[Any]] = {}
        remote: Dict[int, List[Any]] = {}  # dest node -> [(src, dst, payload)]
        for dest, payloads in outgoing.items():
            dest_node = self.node_of(dest)
            if dest_node == self.node:
                bucket = local.setdefault(self.comm.topology.core_of(
                    self.comm.world_rank_of(dest)), [])
                bucket.extend((my_rank, payload) for payload in payloads)
            else:
                bucket = remote.setdefault(dest_node, [])
                bucket.extend((my_rank, dest, payload) for payload in payloads)

        # Hop 1: every rank hands its remote bundles to the node leader.
        leader_local = 0  # node_comm rank of the leader (first rank of node)
        gathered = self.node_comm.gather(remote, root=leader_local)

        # Hop 2: leaders exchange ONE coalesced bundle per destination node
        # (the message-count saving of the two-level scheme).
        fanin: Dict[int, List[Any]] = {}
        if self.is_leader:
            assert gathered is not None and self.leader_comm is not None
            merged: Dict[int, List[Any]] = {}
            for contribution in gathered:
                for dest_node, items in contribution.items():
                    merged.setdefault(dest_node, []).extend(items)
            arrived = neighbor_exchange(
                self.leader_comm,
                {node: [items] for node, items in merged.items()},
            )
            # Regroup arrivals by destination core on this node.
            for _src_leader, bundles in arrived.items():
                for items in bundles:
                    for src, dst, payload in items:
                        core = self.comm.topology.core_of(
                            self.comm.world_rank_of(dst)
                        )
                        fanin.setdefault(core, []).append((src, payload))

        # Hop 3: leader scatters arrivals to its node's ranks; combine with
        # purely local traffic via an on-node exchange.
        for core, items in fanin.items():
            local.setdefault(core, []).extend(items)
        delivered = neighbor_exchange(self.node_comm, local)

        received: Dict[int, List[Any]] = {}
        for _node_src, items in delivered.items():
            for src, payload in items:
                received.setdefault(src, []).append(payload)
        return received
