"""Collective operations over :class:`repro.parallel.comm.Comm`.

The collectives are implemented on top of the communicator's reserved
point-to-point channel, each call consuming one sequence number per rank so
that back-to-back collectives on the same communicator never cross-match
(SPMD programs call collectives in the same order on every rank, the same
contract MPI imposes).

Algorithms:

* ``barrier`` — dissemination barrier, ceil(log2 P) rounds.
* ``bcast`` — binomial tree rooted at ``root``.
* ``gather``/``scatter`` — direct (flat) exchange with the root.
* ``reduce`` — gather to root then a *rank-ordered* fold, so the result is
  deterministic even for non-commutative/non-associative operators (a
  stronger guarantee than MPI gives, and the right one for a simulator).
* ``allgather``/``allreduce`` — root variant followed by broadcast.
* ``alltoall`` — direct pairwise exchange.
* ``scan``/``exscan`` — linear chain.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, List, Optional

BinOp = Callable[[Any, Any], Any]


def _resolve_op(op: Optional[BinOp]) -> BinOp:
    return operator.add if op is None else op


def barrier(comm) -> None:
    """Dissemination barrier: after return, every rank has entered."""
    seq = comm._next_seq()
    comm._sanitize_collective("barrier", seq)
    size = comm.size
    if size == 1:
        return
    rank = comm.rank
    round_ = 0
    distance = 1
    while distance < size:
        comm._csend(None, (rank + distance) % size, "barrier", seq, round_)
        comm._crecv((rank - distance) % size, "barrier", seq, round_)
        distance *= 2
        round_ += 1


def bcast(comm, obj: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast of ``obj`` from ``root``; returns the object."""
    seq = comm._next_seq()
    comm._sanitize_collective("bcast", seq)
    size = comm.size
    if size == 1:
        return obj
    rank = comm.rank
    # Work in a rotated rank space where the root is virtual rank 0.
    vrank = (rank - root) % size
    if vrank != 0:
        # Receive from parent: clear the lowest set bit of vrank.
        parent = vrank & (vrank - 1)
        obj = comm._crecv((parent + root) % size, "bcast", seq)
    # Forward to children: set each bit above the lowest set bit of vrank.
    mask = 1
    while mask < size:
        if vrank & (mask - 1) == 0 and vrank | mask != vrank:
            child = vrank | mask
            if child < size:
                comm._csend(obj, (child + root) % size, "bcast", seq)
        if vrank & mask:
            break
        mask <<= 1
    return obj


def gather(comm, sendobj: Any, root: int = 0) -> Optional[List[Any]]:
    """Gather one object per rank to ``root`` (rank order); None elsewhere."""
    seq = comm._next_seq()
    comm._sanitize_collective("gather", seq)
    if comm.rank == root:
        result: List[Any] = [None] * comm.size
        result[root] = sendobj
        for src in range(comm.size):
            if src != root:
                result[src] = comm._crecv(src, "gather", seq)
        return result
    comm._csend(sendobj, root, "gather", seq)
    return None


def scatter(comm, sendobj: Optional[List[Any]], root: int = 0) -> Any:
    """Scatter ``comm.size`` objects from ``root``; returns this rank's one."""
    seq = comm._next_seq()
    comm._sanitize_collective("scatter", seq)
    if comm.rank == root:
        if sendobj is None or len(sendobj) != comm.size:
            raise ValueError(
                f"scatter root needs a list of exactly {comm.size} objects"
            )
        for dst in range(comm.size):
            if dst != root:
                comm._csend(sendobj[dst], dst, "scatter", seq)
        return sendobj[root]
    return comm._crecv(root, "scatter", seq)


def reduce(comm, sendobj: Any, op: Optional[BinOp] = None, root: int = 0) -> Any:
    """Reduce to ``root`` with a rank-ordered fold; None on other ranks."""
    op = _resolve_op(op)
    contributions = gather(comm, sendobj, root)
    if comm.rank != root:
        return None
    assert contributions is not None
    accum = contributions[0]
    for value in contributions[1:]:
        accum = op(accum, value)
    return accum


def allgather(comm, sendobj: Any) -> List[Any]:
    """Every rank receives the rank-ordered list of all contributions."""
    gathered = gather(comm, sendobj, root=0)
    return bcast(comm, gathered, root=0)


def allreduce(comm, sendobj: Any, op: Optional[BinOp] = None) -> Any:
    """Reduction whose result is returned on every rank."""
    reduced = reduce(comm, sendobj, op, root=0)
    return bcast(comm, reduced, root=0)


def alltoall(comm, sendobjs: List[Any]) -> List[Any]:
    """Personalized all-to-all: rank i's ``sendobjs[j]`` reaches rank j."""
    if len(sendobjs) != comm.size:
        raise ValueError(
            f"alltoall needs exactly {comm.size} objects, got {len(sendobjs)}"
        )
    seq = comm._next_seq()
    comm._sanitize_collective("alltoall", seq)
    rank = comm.rank
    for dst in range(comm.size):
        if dst != rank:
            comm._csend(sendobjs[dst], dst, "alltoall", seq)
    result: List[Any] = [None] * comm.size
    result[rank] = sendobjs[rank]
    for src in range(comm.size):
        if src != rank:
            result[src] = comm._crecv(src, "alltoall", seq)
    return result


def scan(comm, sendobj: Any, op: Optional[BinOp] = None) -> Any:
    """Inclusive prefix reduction along rank order (linear chain)."""
    op = _resolve_op(op)
    seq = comm._next_seq()
    comm._sanitize_collective("scan", seq)
    rank = comm.rank
    if rank == 0:
        accum = sendobj
    else:
        prefix = comm._crecv(rank - 1, "scan", seq)
        accum = op(prefix, sendobj)
    if rank + 1 < comm.size:
        comm._csend(accum, rank + 1, "scan", seq)
    return accum


def exscan(comm, sendobj: Any, op: Optional[BinOp] = None) -> Any:
    """Exclusive prefix reduction; rank 0 receives None (as in MPI)."""
    op = _resolve_op(op)
    seq = comm._next_seq()
    comm._sanitize_collective("exscan", seq)
    rank = comm.rank
    prefix = None if rank == 0 else comm._crecv(rank - 1, "exscan", seq)
    if rank + 1 < comm.size:
        outgoing = sendobj if prefix is None else op(prefix, sendobj)
        comm._csend(outgoing, rank + 1, "exscan", seq)
    return prefix
