"""Star forest: the one communication primitive behind every exchange.

Knepley, Lange & Gorman (arXiv 1506.06194) observe that the sharing
structure of a distributed mesh — owners with read-only copies scattered
over other processes — is a *star forest*: a disjoint union of stars, each
a root (the owned entity) pointing at its leaves (the copies).  Every
distributed-mesh service then reduces to a handful of collective patterns
over that one map:

* :meth:`StarForest.bcast` — root values travel to their leaves
  (migration's pack/send, ghost-bundle delivery, owner→copy field sync);
* :meth:`StarForest.reduce` — leaf values combine onto their root with a
  pluggable op (field accumulation's copy→owner sums);
* :meth:`StarForest.fetch_and_op` — leaves atomically read-and-update
  their root (global counters, unique-id allocation);
* :meth:`StarForest.compose` — chaining two forests yields the forest of
  depth-2 sharing, which is how arbitrary-depth overlaps are distributed.

The forest maps ``(leaf part, leaf handle) -> (root part, root handle)``
where a handle is any hashable, sortable local designator (an
:class:`~repro.mesh.entity.Ent`, an integer ordinal, a tuple).  Payloads
ride the coalesced binary codec (:mod:`repro.parallel.codec`): one encoded
buffer per communicating part pair per operation, with the wire schema
chosen by an :class:`SFDatatype` (generic values, field-value batches,
element-closure bundles, integer rows).  Every operation is one or two
BSP supersteps, charges ``sf.*`` counters, opens a superstep-aligned span
on the communicator's tracer, and returns a byte-deterministic
:class:`~repro.obs.stats.SFStats` record.

The communicator is duck-typed: anything exposing ``nparts``, ``codec``,
``counters``, ``tracer`` and ``router()`` works —
:class:`~repro.partition.dmesh.DistributedMesh` does, and the standalone
:class:`SFComm` serves forest users with no mesh at all.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..obs.stats import CommProbe, SFStats
from ..obs.tracer import Tracer, current as current_tracer, trace_span
from .codec import (
    CodecError,
    decode_element_batch,
    decode_int_rows,
    decode_value_batch,
    dumps,
    encode_element_batch,
    encode_int_rows,
    encode_value_batch,
    loads,
)
from .network import CODECS, Network
from .perf import GLOBAL, PerfCounters
from .routing import BufferedRouter
from .topology import MachineTopology, flat

__all__ = [
    "OPS",
    "SFComm",
    "SFDatatype",
    "StarForest",
    "GENERIC",
    "VALUES",
    "BUNDLES",
    "INT_ROWS",
]

#: Reduction operators accepted by :meth:`StarForest.reduce` and
#: :meth:`StarForest.fetch_and_op`.
OPS = ("replace", "sum", "min", "max")

_TAG_SF = 40


def _combine(op: str, a: Any, b: Any) -> Any:
    """Fold ``b`` into ``a`` under ``op`` (elementwise on arrays)."""
    if op == "replace":
        return b
    if op == "sum":
        return a + b
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b) if op == "min" else np.maximum(a, b)
    return min(a, b) if op == "min" else max(a, b)


# ---------------------------------------------------------------------------
# wire datatypes
# ---------------------------------------------------------------------------


class SFDatatype:
    """Wire strategy for one SF operation's ``(handle, payload)`` items.

    ``encode`` turns the item list for one part pair into a single codec
    frame; ``decode`` reverses it, pairing payloads back with the
    ``handles`` the receiver expects (sender and receiver traverse the
    forest in the same sorted order, so positional pairing is exact).
    The base class is the generic strategy: payloads of any codec-encodable
    type, shipped positionally via :func:`~repro.parallel.codec.dumps`.
    """

    name = "generic"

    def encode(self, items: List[Tuple[Any, Any]]) -> bytes:
        return dumps([payload for _handle, payload in items])

    def decode(self, blob: Any, handles: List[Any]) -> List[Tuple[Any, Any]]:
        payloads = loads(blob)
        if not isinstance(payloads, list) or len(payloads) != len(handles):
            raise CodecError(
                f"star-forest batch carries {len(payloads)} payload(s) "
                f"where {len(handles)} expected"
            )
        return list(zip(handles, payloads))


class _ValuesDatatype(SFDatatype):
    """Field-value batches: handles are entities, payloads float arrays.

    This is byte-identical to the legacy field-sync wire format — the
    entity handle itself travels in the frame's entity columns — so the
    handle check below doubles as an end-to-end forest/wire consistency
    assertion.
    """

    name = "values"

    def encode(self, items: List[Tuple[Any, Any]]) -> bytes:
        return encode_value_batch(items)

    def decode(self, blob: Any, handles: List[Any]) -> List[Tuple[Any, Any]]:
        pairs = decode_value_batch(blob)
        if len(pairs) != len(handles):
            raise CodecError(
                f"star-forest value batch carries {len(pairs)} value(s) "
                f"where {len(handles)} expected"
            )
        for expected, (ent, _value) in zip(handles, pairs):
            if ent != expected:
                raise CodecError(
                    f"star-forest value batch names {ent} where the forest "
                    f"expects {expected}"
                )
        return pairs


class _BundlesDatatype(SFDatatype):
    """Element-closure bundles (``_pack_element`` dicts), interned batch."""

    name = "bundles"

    def encode(self, items: List[Tuple[Any, Any]]) -> bytes:
        return encode_element_batch([payload for _handle, payload in items])

    def decode(self, blob: Any, handles: List[Any]) -> List[Tuple[Any, Any]]:
        bundles = decode_element_batch(blob)
        if len(bundles) != len(handles):
            raise CodecError(
                f"star-forest element batch carries {len(bundles)} "
                f"bundle(s) where {len(handles)} expected"
            )
        return list(zip(handles, bundles))


class _IntRowsDatatype(SFDatatype):
    """Integer-tuple payloads as one columnar ragged-row frame."""

    name = "int_rows"

    def encode(self, items: List[Tuple[Any, Any]]) -> bytes:
        return encode_int_rows([payload for _handle, payload in items])

    def decode(self, blob: Any, handles: List[Any]) -> List[Tuple[Any, Any]]:
        rows = decode_int_rows(blob)
        if len(rows) != len(handles):
            raise CodecError(
                f"star-forest int-row batch carries {len(rows)} row(s) "
                f"where {len(handles)} expected"
            )
        return list(zip(handles, rows))


#: Generic payloads (any codec-encodable value), shipped positionally.
GENERIC = SFDatatype()
#: ``(entity, float array)`` field values — the legacy field-sync format.
VALUES = _ValuesDatatype()
#: Element-closure bundles — the migration/ghosting wire format.
BUNDLES = _BundlesDatatype()
#: Integer tuples as columnar ragged rows.
INT_ROWS = _IntRowsDatatype()


# ---------------------------------------------------------------------------
# standalone communicator
# ---------------------------------------------------------------------------


class SFComm:
    """Minimal communicator satisfying the :class:`StarForest` contract.

    A :class:`~repro.partition.dmesh.DistributedMesh` already exposes the
    same surface (``nparts``/``codec``/``counters``/``tracer``/``router``);
    this class serves forest users that have no mesh — tests, generic
    halo-exchange experiments — without dragging the partition layer in.
    """

    def __init__(
        self,
        nparts: int,
        topology: Optional[MachineTopology] = None,
        counters: Optional[PerfCounters] = None,
        codec: str = "binary",
        sanitize: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if nparts < 1:
            raise ValueError(f"need at least one part, got {nparts}")
        if codec not in CODECS:
            raise ValueError(f"unknown codec {codec!r} (expected {CODECS})")
        self.nparts = nparts
        self.topology = topology if topology is not None else flat(nparts)
        self.counters = counters if counters is not None else GLOBAL
        self.codec = codec
        self.sanitize = sanitize
        self.tracer = tracer if tracer is not None else current_tracer()
        self.fault_injector = None
        self._network: Optional[Network] = None

    def router(self, trusted: bool = False) -> BufferedRouter:
        """A coalescing router over the lazily built network.

        ``trusted`` is accepted for interface parity with
        :meth:`~repro.partition.dmesh.DistributedMesh.router`; the
        standalone communicator keeps one (copying) channel.
        """
        if self._network is None:
            self._network = Network(
                self.nparts,
                topology=self.topology,
                counters=self.counters,
                codec=self.codec,
                sanitize=self.sanitize,
                tracer=self.tracer,
                fault_injector=self.fault_injector,
            )
        else:
            self._network.tracer = self.tracer
            self._network.fault_injector = self.fault_injector
            self._network.codec = self.codec
        return BufferedRouter(self._network)


# ---------------------------------------------------------------------------
# the star forest
# ---------------------------------------------------------------------------


class StarForest:
    """A root↔leaf sharing map over ``(part, local handle)`` pairs.

    Construction is incremental (:meth:`add_leaf`); operations traverse the
    forest in sorted order, so a forest built in any insertion order
    produces byte-identical wire traffic and stats.  One exception is
    load-bearing for parity with the hand-rolled exchanges this primitive
    replaced: within one (root part, leaf part) pair, items are ordered by
    *leaf handle* — callers that mint ordinal leaf handles therefore
    control the exact batch layout on the wire.
    """

    def __init__(self, comm: Any, name: str = "sf") -> None:
        self.comm = comm
        self.name = name
        self._leaves: Dict[Tuple[int, Any], Tuple[int, Any]] = {}

    # -- construction -------------------------------------------------------

    def add_leaf(
        self,
        leaf_pid: int,
        leaf_handle: Any,
        root_pid: int,
        root_handle: Any,
    ) -> None:
        """Register one leaf; idempotent on identical re-adds.

        A leaf has exactly one root: re-adding the same leaf with a
        different root raises ``ValueError`` (that is a two-owner bug in
        the caller's sharing map, not a representable forest).
        """
        nparts = self.comm.nparts
        if not 0 <= leaf_pid < nparts:
            raise ValueError(f"leaf part {leaf_pid} out of range [0, {nparts})")
        if not 0 <= root_pid < nparts:
            raise ValueError(f"root part {root_pid} out of range [0, {nparts})")
        key = (leaf_pid, leaf_handle)
        root = (root_pid, root_handle)
        existing = self._leaves.get(key)
        if existing is not None and existing != root:
            raise ValueError(
                f"leaf {key} already points at root {existing}; "
                f"cannot repoint to {root}"
            )
        self._leaves[key] = root

    @property
    def nleaves(self) -> int:
        return len(self._leaves)

    @property
    def nroots(self) -> int:
        return len(set(self._leaves.values()))

    def leaves(self) -> List[Tuple[Tuple[int, Any], Tuple[int, Any]]]:
        """All ``((leaf part, handle), (root part, handle))`` pairs, sorted."""
        return sorted(self._leaves.items())

    def compose(self, other: "StarForest") -> "StarForest":
        """The forest reaching ``other``'s roots through this forest's.

        A leaf ``L -> R`` of ``self`` whose root ``R`` is itself a leaf
        ``R -> S`` of ``other`` contributes ``L -> S`` to the result: two
        hops of sharing collapsed into one map.  Iterating composition is
        how depth-k overlaps distribute — the k-th ring's forest is the
        (k-1)-ring forest composed with one more ring of sharing.
        """
        if other.comm is not self.comm:
            raise ValueError(
                "cannot compose star forests over different communicators"
            )
        result = StarForest(self.comm, name=f"{self.name}*{other.name}")
        for leaf, root in self._leaves.items():
            target = other._leaves.get(root)
            if target is not None:
                result._leaves[leaf] = target
        return result

    # -- traversal ----------------------------------------------------------

    def _groups(
        self, key: Callable[[Tuple[Any, Any]], Any]
    ) -> Dict[Tuple[int, int], List[Tuple[Any, Any]]]:
        """``{(root part, leaf part): [(root handle, leaf handle), ...]}``.

        Entries within a pair are sorted by ``key``; pairs themselves are
        iterated sorted by every operation, which is what makes the wire
        traffic a pure function of the forest's contents.
        """
        groups: Dict[Tuple[int, int], List[Tuple[Any, Any]]] = {}
        for (lpid, lh), (rpid, rh) in self._leaves.items():
            groups.setdefault((rpid, lpid), []).append((rh, lh))
        for entries in groups.values():
            entries.sort(key=key)
        return groups

    def _post(
        self,
        router: BufferedRouter,
        src: int,
        dst: int,
        items: List[Tuple[Any, Any]],
        datatype: SFDatatype,
        binary: bool,
    ) -> None:
        if binary:
            blob = datatype.encode(items)
            counters = self.comm.counters
            counters.add("sf.bytes.encoded", len(blob))
            counters.add("net.bytes.encoded", len(blob))
            counters.add("net.messages.coalesced", len(items))
            router.post(src, dst, _TAG_SF, blob)
        else:
            router.post(src, dst, _TAG_SF, items)

    def _stats(self, probe: CommProbe, op: str, records: int,
               sf_ops: int) -> SFStats:
        return SFStats(
            op=op,
            forest=self.name,
            nroots=self.nroots,
            nleaves=self.nleaves,
            records=records,
            sf_ops=sf_ops,
            messages=probe.messages(),
            wire_bytes=probe.wire_bytes(),
            supersteps=probe.supersteps(),
            seconds=probe.seconds(),
            encoded_bytes=probe.encoded_bytes(),
            messages_coalesced=probe.messages_coalesced(),
        )

    @staticmethod
    def _deliver(
        lpid: int,
        rpid: int,
        items: List[Tuple[Any, Any]],
        leaf_set: Optional[Callable[[int, Any, Any], None]],
        batch_set: Optional[Callable[[int, int, List[Tuple[Any, Any]]], None]],
    ) -> None:
        if batch_set is not None:
            batch_set(lpid, rpid, items)
        elif leaf_set is not None:
            for handle, payload in items:
                leaf_set(lpid, handle, payload)

    # -- operations ---------------------------------------------------------

    def bcast(
        self,
        root_data: Callable[[int, Any], Any],
        leaf_set: Optional[Callable[[int, Any, Any], None]] = None,
        datatype: SFDatatype = GENERIC,
        batch_set: Optional[
            Callable[[int, int, List[Tuple[Any, Any]]], None]
        ] = None,
    ) -> SFStats:
        """Root values travel to their leaves; one superstep, always.

        ``root_data(root_pid, root_handle)`` produces the payload for each
        leaf of that root (called once per leaf, in wire order).  Delivery
        is either per item — ``leaf_set(leaf_pid, leaf_handle, payload)`` —
        or per batch — ``batch_set(leaf_pid, root_pid, items)`` with the
        full ``(handle, payload)`` list for one part pair, for receivers
        (ghost/migration unpack) that exploit batch-level interning.

        The exchange runs even when the forest is empty, so a fixed call
        sequence costs a fixed superstep count regardless of data.
        """
        comm = self.comm
        probe = CommProbe(comm.counters)
        binary = comm.codec == "binary"
        records = 0
        with trace_span(
            comm.tracer, "sf.bcast", sf=self.name, datatype=datatype.name
        ):
            groups = self._groups(key=lambda entry: entry[1])
            router = comm.router()
            local: List[Tuple[int, int, List[Tuple[Any, Any]]]] = []
            for (rpid, lpid), entries in sorted(groups.items()):
                items = [(lh, root_data(rpid, rh)) for rh, lh in entries]
                records += len(items)
                if rpid == lpid:
                    local.append((lpid, rpid, items))
                    continue
                self._post(router, rpid, lpid, items, datatype, binary)
            inboxes = router.exchange()
            for lpid, rpid, items in local:
                self._deliver(lpid, rpid, items, leaf_set, batch_set)
            for lpid in sorted(inboxes):
                for src, _tag, payload in inboxes[lpid]:
                    if isinstance(payload, (bytes, bytearray)):
                        expected = [lh for _rh, lh in groups[(src, lpid)]]
                        items = datatype.decode(payload, expected)
                    else:
                        items = payload
                    self._deliver(lpid, src, items, leaf_set, batch_set)
            comm.counters.add("sf.ops.bcast")
            comm.counters.add("sf.records", records)
        return self._stats(probe, "bcast", records, sf_ops=1)

    def _gather(
        self,
        leaf_data: Callable[[int, Any], Any],
        datatype: SFDatatype,
        router: BufferedRouter,
        binary: bool,
    ) -> Tuple[Dict[int, List[Tuple[Any, int, Any, Any]]], int]:
        """Leaf→root transport shared by reduce and fetch_and_op.

        Returns ``{root_pid: [(root handle, leaf pid, leaf handle, value)]}``
        rows (unordered — callers sort) plus the record count.  One
        superstep: posts, one exchange, decode.
        """
        groups = self._groups(key=lambda entry: (entry[0], entry[1]))
        arrivals: Dict[int, List[Tuple[Any, int, Any, Any]]] = {}
        records = 0
        for (rpid, lpid), entries in sorted(groups.items()):
            items = [(rh, leaf_data(lpid, lh)) for rh, lh in entries]
            records += len(items)
            if rpid == lpid:
                rows = arrivals.setdefault(rpid, [])
                for (rh, lh), (_wire_rh, value) in zip(entries, items):
                    rows.append((rh, lpid, lh, value))
                continue
            self._post(router, lpid, rpid, items, datatype, binary)
        inboxes = router.exchange()
        for rpid in sorted(inboxes):
            rows = arrivals.setdefault(rpid, [])
            for src, _tag, payload in inboxes[rpid]:
                entries = groups[(rpid, src)]
                if isinstance(payload, (bytes, bytearray)):
                    expected = [rh for rh, _lh in entries]
                    items = datatype.decode(payload, expected)
                else:
                    items = payload
                for (rh, lh), (_wire_rh, value) in zip(entries, items):
                    rows.append((rh, src, lh, value))
        return arrivals, records

    def reduce(
        self,
        leaf_data: Callable[[int, Any], Any],
        root_set: Callable[[int, Any, Any], None],
        op: str = "sum",
        datatype: SFDatatype = GENERIC,
    ) -> SFStats:
        """Leaf values combine onto their root; one superstep, always.

        ``leaf_data(leaf_pid, leaf_handle)`` produces each contribution;
        per root the contributions are folded with ``op`` in the globally
        sorted ``(root handle, leaf pid, leaf handle)`` order — the fold is
        deterministic even for non-associative float addition — and handed
        to ``root_set(root_pid, root_handle, combined)``.  ``combined``
        covers the *leaf* contributions only; a caller wanting the root's
        own value in the fold merges it inside ``root_set``.
        """
        if op not in OPS:
            raise ValueError(f"unknown reduce op {op!r} (expected one of {OPS})")
        comm = self.comm
        probe = CommProbe(comm.counters)
        binary = comm.codec == "binary"
        with trace_span(
            comm.tracer, "sf.reduce", sf=self.name, op=op,
            datatype=datatype.name,
        ):
            router = comm.router()
            arrivals, records = self._gather(leaf_data, datatype, router,
                                             binary)
            for rpid in sorted(arrivals):
                rows = sorted(
                    arrivals[rpid], key=lambda row: (row[0], row[1], row[2])
                )
                current_rh: Any = None
                acc: Any = None
                started = False
                for rh, _lpid, _lh, value in rows:
                    if started and rh == current_rh:
                        acc = _combine(op, acc, value)
                    else:
                        if started:
                            root_set(rpid, current_rh, acc)
                        current_rh, acc, started = rh, value, True
                if started:
                    root_set(rpid, current_rh, acc)
            comm.counters.add("sf.ops.reduce")
            comm.counters.add("sf.records", records)
        return self._stats(probe, f"reduce.{op}", records, sf_ops=1)

    def fetch_and_op(
        self,
        leaf_data: Callable[[int, Any], Any],
        root_get: Callable[[int, Any], Any],
        root_set: Callable[[int, Any, Any], None],
        op: str = "sum",
        datatype: SFDatatype = GENERIC,
    ) -> Tuple[Dict[Tuple[int, Any], Any], SFStats]:
        """Atomic leaf read-and-update of roots; two supersteps, always.

        Each leaf's contribution is applied to its root in the globally
        sorted ``(root handle, leaf pid, leaf handle)`` order; the value
        the root held *immediately before* that leaf's own update travels
        back to the leaf.  Returns ``({(leaf_pid, leaf_handle): fetched},
        stats)`` — the classic fetch-and-add when ``op="sum"``, which makes
        disjoint range allocation off a shared counter a one-liner.
        """
        if op not in OPS:
            raise ValueError(f"unknown reduce op {op!r} (expected one of {OPS})")
        comm = self.comm
        probe = CommProbe(comm.counters)
        binary = comm.codec == "binary"
        fetched: Dict[Tuple[int, Any], Any] = {}
        with trace_span(
            comm.tracer, "sf.fetch_and_op", sf=self.name, op=op,
            datatype=datatype.name,
        ):
            router = comm.router()
            arrivals, records = self._gather(leaf_data, datatype, router,
                                             binary)
            returns: Dict[Tuple[int, int], List[Tuple[Any, Any]]] = {}
            for rpid in sorted(arrivals):
                rows = sorted(
                    arrivals[rpid], key=lambda row: (row[0], row[1], row[2])
                )
                current_rh: Any = None
                acc: Any = None
                started = False
                for rh, lpid, lh, value in rows:
                    if not started or rh != current_rh:
                        if started:
                            root_set(rpid, current_rh, acc)
                        current_rh, started = rh, True
                        acc = root_get(rpid, rh)
                    returns.setdefault((rpid, lpid), []).append((lh, acc))
                    acc = _combine(op, acc, value)
                if started:
                    root_set(rpid, current_rh, acc)
            # Second superstep: fetched values travel back to the leaves.
            router = comm.router()
            for (rpid, lpid), items in sorted(returns.items()):
                items.sort(key=lambda item: item[0])
                records += len(items)
                if rpid == lpid:
                    for lh, value in items:
                        fetched[(lpid, lh)] = value
                    continue
                self._post(router, rpid, lpid, items, datatype, binary)
            groups = self._groups(key=lambda entry: entry[1])
            inboxes = router.exchange()
            for lpid in sorted(inboxes):
                for src, _tag, payload in inboxes[lpid]:
                    if isinstance(payload, (bytes, bytearray)):
                        expected = [lh for _rh, lh in groups[(src, lpid)]]
                        items = datatype.decode(payload, expected)
                    else:
                        items = payload
                    for lh, value in items:
                        fetched[(lpid, lh)] = value
            comm.counters.add("sf.ops.fetch_and_op")
            comm.counters.add("sf.records", records)
        return fetched, self._stats(
            probe, f"fetch_and_op.{op}", records, sf_ops=2
        )

    def __repr__(self) -> str:
        return (
            f"StarForest({self.name!r}, roots={self.nroots}, "
            f"leaves={self.nleaves})"
        )
