"""SPMD executor: run one rank function per thread with a shared world.

This is the simulation's stand-in for ``mpiexec -n P python prog.py``: the
rank program is a Python callable taking a :class:`~repro.parallel.comm.Comm`
as its first argument, and :func:`spmd` launches ``P`` copies on threads.
Return values are collected in rank order; an exception on any rank aborts
the job and is re-raised on the caller (with all other failures attached as
notes), mirroring an MPI abort.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, List, Optional, Sequence

from ..obs.tracer import Tracer, trace_span
from .comm import Comm, CommWorld, CommAbortedError
from .perf import PerfCounters
from .topology import MachineTopology


class SpmdError(RuntimeError):
    """One or more ranks raised; carries per-rank tracebacks."""

    def __init__(self, failures: Sequence[tuple]) -> None:
        self.failures = list(failures)
        rank, exc, tb = self.failures[0]
        detail = "".join(
            f"\n--- rank {r} raised {type(e).__name__}: {e} ---\n{t}"
            for r, e, t in self.failures
        )
        super().__init__(
            f"{len(self.failures)} rank(s) failed; first: rank {rank} "
            f"raised {type(exc).__name__}: {exc}{detail}"
        )


def spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    topology: Optional[MachineTopology] = None,
    counters: Optional[PerfCounters] = None,
    timeout: Optional[float] = 60.0,
    copy_off_node: bool = True,
    sanitize: Optional[bool] = None,
    tracer: Optional[Tracer] = None,
) -> List[Any]:
    """Run ``fn(comm, *args)`` on ``nranks`` threads; return results by rank.

    Parameters
    ----------
    nranks:
        Number of simulated ranks (threads).
    fn:
        The rank program.  Receives the world communicator then ``args``.
    topology:
        Machine model for on/off-node classification (default: flat).
    counters:
        Shared performance registry (default: the module-global one).
    timeout:
        Per-receive deadlock timeout in seconds; ``None`` disables it.
    copy_off_node:
        Whether off-node payloads are deep-copied through pickle (MPI
        semantics).  Disable only for trusted read-only payloads.
    sanitize:
        Enable the runtime sanitizers (alias freeze proxies, collective-order
        cross-checking, wait-for-graph deadlock detection).  ``None`` (the
        default) resolves from the ``REPRO_SANITIZE`` environment variable.
    tracer:
        Observability hook (:class:`~repro.obs.Tracer`).  When tracing is
        active each rank runs inside a ``rank<i>`` span with its trace
        thread id bound to the rank, and every transmitted message is
        charged to the communication matrix.  ``None`` resolves to the
        installed default tracer (normally also ``None`` — untraced runs
        pay one branch per message).
    """
    world = CommWorld(
        nranks,
        topology=topology,
        counters=counters,
        copy_off_node=copy_off_node,
        timeout=timeout,
        sanitize=sanitize,
        tracer=tracer,
    )
    results: List[Any] = [None] * nranks
    failures: List[tuple] = []
    failure_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = Comm(world, rank)
        active = world.tracer if (
            world.tracer is not None and world.tracer.enabled
        ) else None
        if active is not None:
            # Spans opened by the rank program inherit tid=rank, so the
            # Chrome trace shows one timeline lane per rank.
            active.bind(pid=0, tid=rank)
        try:
            with trace_span(active, f"rank{rank}", tid=rank):
                results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            with failure_lock:
                failures.append((rank, exc, traceback.format_exc()))
            world.abort()

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(nranks)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    if failures:
        failures.sort(key=lambda item: item[0])
        # Secondary CommAbortedError failures are just ranks woken by the
        # abort; report the root cause(s) unless nothing else failed.
        primary = [
            f for f in failures if not isinstance(f[1], CommAbortedError)
        ]
        raise SpmdError(primary or failures)
    return results
