"""SPMD executor: run one rank function per thread with a shared world.

This is the simulation's stand-in for ``mpiexec -n P python prog.py``: the
rank program is a Python callable taking a :class:`~repro.parallel.comm.Comm`
as its first argument, and :func:`spmd` launches ``P`` copies on threads.
Return values are collected in rank order; an exception on any rank aborts
the job and is re-raised on the caller (with all other failures attached as
notes), mirroring an MPI abort.

Failures are reported structurally: :class:`SpmdError.records` is a list of
:class:`RankFailure` dataclasses (rank, exception type, superstep reached,
whether the failure was injected by :mod:`repro.resilience`), so recovery
drivers can classify failures without parsing tracebacks.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Union

from ..obs.tracer import Tracer, trace_span
from .comm import Comm, CommWorld, CommAbortedError
from .perf import PerfCounters
from .topology import MachineTopology


@dataclass(frozen=True)
class RankFailure:
    """Structured record of one rank's failure.

    ``superstep`` is the rank's collective sequence number when it failed
    (its progress marker), or the injected fault's superstep when the
    failure came from a fault plan.  ``injected`` is true for failures
    raised by :class:`repro.resilience.InjectedFault` subclasses.
    """

    rank: int
    exc_type: str
    message: str
    traceback: str
    superstep: Optional[int] = None
    injected: bool = False
    exception: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )

    def to_dict(self) -> dict:
        """JSON-safe form (the live exception object is omitted)."""
        return {
            "rank": self.rank,
            "exc_type": self.exc_type,
            "message": self.message,
            "superstep": self.superstep,
            "injected": self.injected,
        }


def _normalize(failure: Union["RankFailure", tuple]) -> RankFailure:
    if isinstance(failure, RankFailure):
        return failure
    rank, exc, tb = failure
    return RankFailure(
        rank=rank,
        exc_type=type(exc).__name__,
        message=str(exc),
        traceback=tb,
        injected=bool(getattr(exc, "injected_fault", False)),
        superstep=getattr(exc, "superstep", None),
        exception=exc,
    )


class SpmdError(RuntimeError):
    """One or more ranks raised; carries structured per-rank records.

    ``records`` holds :class:`RankFailure` entries sorted by rank;
    ``failures`` keeps the legacy ``(rank, exception, traceback)`` tuples.
    ``leaked_threads`` counts rank worker threads that were still alive
    when the executor gave up joining them (they are daemon threads, so
    they cannot keep the process alive, but they indicate a rank program
    stuck outside the communication layer).
    """

    leaked_threads: int = 0

    def __init__(
        self, failures: Sequence[Union[RankFailure, tuple]]
    ) -> None:
        self.records: List[RankFailure] = [_normalize(f) for f in failures]
        self.failures = [
            (r.rank, r.exception, r.traceback) for r in self.records
        ]
        first = self.records[0]
        detail = "".join(
            f"\n--- rank {r.rank} raised {r.exc_type}: {r.message} ---"
            f"\n{r.traceback}"
            for r in self.records
        )
        super().__init__(
            f"{len(self.records)} rank(s) failed; first: rank {first.rank} "
            f"raised {first.exc_type}: {first.message}{detail}"
        )

    @property
    def injected_only(self) -> bool:
        """True when every reported failure came from a fault plan."""
        return all(r.injected for r in self.records)


def spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    topology: Optional[MachineTopology] = None,
    counters: Optional[PerfCounters] = None,
    timeout: Optional[float] = 60.0,
    copy_off_node: bool = True,
    sanitize: Optional[bool] = None,
    tracer: Optional[Tracer] = None,
    fault_injector: Optional[Any] = None,
    cancel: Optional[threading.Event] = None,
    join_grace: float = 5.0,
) -> List[Any]:
    """Run ``fn(comm, *args)`` on ``nranks`` threads; return results by rank.

    Parameters
    ----------
    nranks:
        Number of simulated ranks (threads).
    fn:
        The rank program.  Receives the world communicator then ``args``.
    topology:
        Machine model for on/off-node classification (default: flat).
    counters:
        Shared performance registry (default: the module-global one).
    timeout:
        Per-receive deadlock timeout in seconds; ``None`` disables it.
    copy_off_node:
        Whether off-node payloads are deep-copied through pickle (MPI
        semantics).  Disable only for trusted read-only payloads.
    sanitize:
        Enable the runtime sanitizers (alias freeze proxies, collective-order
        cross-checking, wait-for-graph deadlock detection).  ``None`` (the
        default) resolves from the ``REPRO_SANITIZE`` environment variable.
    tracer:
        Observability hook (:class:`~repro.obs.Tracer`).  When tracing is
        active each rank runs inside a ``rank<i>`` span with its trace
        thread id bound to the rank, and every transmitted message is
        charged to the communication matrix.  ``None`` resolves to the
        installed default tracer (normally also ``None`` — untraced runs
        pay one branch per message).
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector`; ``crash`` faults
        without a superstep kill their rank's thread as it starts, and the
        resulting :class:`SpmdError` records mark the failure as injected.
    cancel:
        Cooperative cancellation hook: when this event is set, the world is
        aborted — every rank blocked in the communication layer wakes with
        :class:`~repro.parallel.comm.CommAbortedError` and the job fails
        with an :class:`SpmdError` whose records are those aborts.  This is
        how the serving tier (:mod:`repro.svc`) enforces job deadlines.
    join_grace:
        After an abort (a rank failure or a cancellation), how many seconds
        to wait for the remaining rank threads to exit.  Threads still
        alive afterwards are abandoned — they are daemon threads, so a
        stuck rank cannot leak a non-daemon thread into the next job run in
        the same process; the count is reported via
        ``SpmdError.leaked_threads`` and the ``spmd.threads.leaked``
        counter.
    """
    world = CommWorld(
        nranks,
        topology=topology,
        counters=counters,
        copy_off_node=copy_off_node,
        timeout=timeout,
        sanitize=sanitize,
        tracer=tracer,
    )
    results: List[Any] = [None] * nranks
    failures: List[RankFailure] = []
    failure_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = Comm(world, rank)
        active = world.tracer if (
            world.tracer is not None and world.tracer.enabled
        ) else None
        if active is not None:
            # Spans opened by the rank program inherit tid=rank, so the
            # Chrome trace shows one timeline lane per rank.
            active.bind(pid=0, tid=rank)
        try:
            if fault_injector is not None:
                fault_injector.on_rank_start(rank)
            with trace_span(active, f"rank{rank}", tid=rank):
                results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            injected = bool(getattr(exc, "injected_fault", False))
            superstep = (
                getattr(exc, "superstep", None)
                if injected
                else comm._collective_seq
            )
            record = RankFailure(
                rank=rank,
                exc_type=type(exc).__name__,
                message=str(exc),
                traceback=traceback.format_exc(),
                superstep=superstep,
                injected=injected,
                exception=exc,
            )
            with failure_lock:
                failures.append(record)
            world.abort()

    threads = [
        threading.Thread(
            target=runner,
            args=(rank,),
            name=f"spmd-rank-{rank}",
            daemon=True,
        )
        for rank in range(nranks)
    ]
    for thread in threads:
        thread.start()

    # Join with a poll so an external cancellation can abort the world, and
    # with a bounded grace period once an abort happened: a rank stuck in
    # pure computation (or a foreign sleep) never observes the abort, and an
    # unbounded join would hang the caller forever.  Daemon threads make
    # abandonment safe — a reaped rank cannot outlive the process.
    pending = list(threads)
    abort_seen: Optional[float] = None
    leaked = 0
    while pending:
        head = pending[-1]
        head.join(timeout=0.02 if (cancel is not None or abort_seen) else 0.2)
        if not head.is_alive():
            pending.pop()
            continue
        if cancel is not None and cancel.is_set():
            world.abort()
        if world.aborted:
            now = time.monotonic()
            if abort_seen is None:
                abort_seen = now
            elif now - abort_seen > join_grace:
                leaked = sum(1 for t in pending if t.is_alive())
                world.counters.add("spmd.threads.leaked", leaked)
                break

    # Abandoned threads may still append to ``failures`` later; work from a
    # snapshot taken under the lock.
    with failure_lock:
        reported = list(failures)

    if leaked and not reported:
        # Cancellation (or a fault) aborted the world but no rank observed
        # it: synthesize records for the abandoned ranks so the caller
        # still gets a structured failure.
        for rank, thread in enumerate(threads):
            if thread.is_alive():
                reported.append(
                    RankFailure(
                        rank=rank,
                        exc_type="LeakedRankError",
                        message=(
                            "rank thread did not exit within the join "
                            "grace period after abort; abandoned as a "
                            "daemon thread"
                        ),
                        traceback="",
                    )
                )

    if reported:
        failures = reported
        failures.sort(key=lambda record: record.rank)
        # Secondary CommAbortedError failures are just ranks woken by the
        # abort; report the root cause(s) unless nothing else failed.
        primary = [
            f for f in failures if not isinstance(f.exception, CommAbortedError)
        ]
        error = SpmdError(primary or failures)
        error.leaked_threads = leaked
        raise error
    return results
