"""Architecture topology model (hwloc substitute).

PUMI obtains "details of the host architecture using hwloc" to map each MPI
process to a node (largest shared-memory hardware entity) and each thread to a
processing unit (Section II-D).  No real hardware topology exists in this
simulation, so :class:`MachineTopology` is a declarative machine model:
``nodes`` nodes with ``cores_per_node`` processing units each.  Ranks (or
parts) are mapped to processing units in block order, which is exactly the
mapping PUMI uses: consecutive ranks fill a node before spilling to the next.

Every communication layer consults this object to classify traffic as
*on-node* (shared memory in the paper: implicit, cheap) versus *off-node*
(explicit message in distributed memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

#: One processing unit of the machine: ``(node index, core index)``.
CoreSlot = Tuple[int, int]


class TopologyError(ValueError):
    """A machine specification or core reservation is invalid.

    Raised for zero/negative node or core counts, out-of-range slots, and
    over-subscribed reservations — the degenerate inputs that would
    otherwise surface far downstream as nonsense placements.
    """


@dataclass(frozen=True)
class MachineTopology:
    """A machine of ``nodes`` shared-memory nodes, each with ``cores_per_node``
    processing units.

    The total number of processing units bounds the number of ranks that can
    be mapped; mapping is block-wise (rank ``r`` lives on node
    ``r // cores_per_node``).
    """

    nodes: int
    cores_per_node: int

    def __post_init__(self) -> None:
        if not isinstance(self.nodes, int) or isinstance(self.nodes, bool):
            raise TopologyError(f"node count must be an int, got {self.nodes!r}")
        if not isinstance(self.cores_per_node, int) or isinstance(
            self.cores_per_node, bool
        ):
            raise TopologyError(
                f"cores per node must be an int, got {self.cores_per_node!r}"
            )
        if self.nodes < 1:
            raise TopologyError(f"need at least one node, got {self.nodes}")
        if self.cores_per_node < 1:
            raise TopologyError(
                f"need at least one core per node, got {self.cores_per_node}"
            )

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check(rank)
        return rank // self.cores_per_node

    def core_of(self, rank: int) -> int:
        """Processing-unit index of ``rank`` within its node."""
        self._check(rank)
        return rank % self.cores_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True when both ranks share a node's memory."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def ranks_on_node(self, node: int) -> range:
        """All ranks mapped to ``node``."""
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
        start = node * self.cores_per_node
        return range(start, start + self.cores_per_node)

    def node_leader(self, node: int) -> int:
        """The designated leader rank of ``node`` (its first rank)."""
        return self.ranks_on_node(node).start

    def is_node_leader(self, rank: int) -> bool:
        return self.core_of(rank) == 0

    def leaders(self) -> List[int]:
        """Leader rank of every node, in node order."""
        return [self.node_leader(n) for n in range(self.nodes)]

    def describe(self) -> str:
        return (
            f"machine: {self.nodes} node(s) x {self.cores_per_node} core(s) "
            f"= {self.total_cores} processing units"
        )

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.total_cores:
            raise ValueError(
                f"rank {rank} out of range [0, {self.total_cores})"
            )

    def __iter__(self) -> Iterator[Tuple[int, range]]:
        """Iterate ``(node, ranks_on_node)`` pairs."""
        for node in range(self.nodes):
            yield node, self.ranks_on_node(node)

    def ledger(self) -> "CoreLedger":
        """A fresh :class:`CoreLedger` tracking this machine's free cores."""
        return CoreLedger(self)


class CoreLedger:
    """Reservation tracking for a machine's processing units.

    The serving tier (:mod:`repro.svc`) carves *core-sets* for concurrent
    SPMD jobs out of one shared :class:`MachineTopology`, the way PUMI pins
    one process per processing unit via hwloc.  The ledger records which
    ``(node, core)`` slots are in use; reservations always hand out the
    lowest-numbered free cores of a node so identical request sequences
    yield identical slot lists.
    """

    def __init__(self, machine: MachineTopology) -> None:
        self.machine = machine
        self._free: Dict[int, List[int]] = {
            node: list(range(machine.cores_per_node))
            for node in range(machine.nodes)
        }

    @property
    def total_cores(self) -> int:
        return self.machine.total_cores

    def free_cores(self) -> int:
        """Total unreserved processing units across the machine."""
        return sum(len(cores) for cores in self._free.values())

    def used_cores(self) -> int:
        return self.total_cores - self.free_cores()

    def free_on(self, node: int) -> int:
        """Unreserved processing units on ``node``."""
        if node not in self._free:
            raise TopologyError(
                f"node {node} out of range [0, {self.machine.nodes})"
            )
        return len(self._free[node])

    def reserve_on(self, node: int, count: int) -> List[CoreSlot]:
        """Reserve ``count`` cores on ``node``; lowest core indices first."""
        if count < 1:
            raise TopologyError(f"reservation size must be >= 1, got {count}")
        free = self._free.get(node)
        if free is None:
            raise TopologyError(
                f"node {node} out of range [0, {self.machine.nodes})"
            )
        if len(free) < count:
            raise TopologyError(
                f"node {node} has {len(free)} free core(s), need {count}"
            )
        taken = free[:count]
        del free[:count]
        return [(node, core) for core in taken]

    def release(self, slots: Sequence[CoreSlot]) -> None:
        """Return previously reserved slots to the free pool."""
        for node, core in slots:
            free = self._free.get(node)
            if free is None:
                raise TopologyError(
                    f"node {node} out of range [0, {self.machine.nodes})"
                )
            if not 0 <= core < self.machine.cores_per_node:
                raise TopologyError(
                    f"core {core} out of range "
                    f"[0, {self.machine.cores_per_node}) on node {node}"
                )
            if core in free:
                raise TopologyError(
                    f"slot (node {node}, core {core}) is not reserved"
                )
            free.append(core)
            free.sort()

    def __repr__(self) -> str:
        return (
            f"CoreLedger({self.machine.describe()}; "
            f"{self.free_cores()}/{self.total_cores} free)"
        )


class PlacedTopology:
    """A job-local machine view over an explicit reserved core-set.

    Implements the :class:`MachineTopology` interface the communication
    layers consult (``total_cores``, ``node_of``, ``same_node``, leader
    queries), but maps job-local rank ``i`` to ``slots[i]`` instead of the
    block rule — so a gang placed across arbitrary cores of the shared
    machine still classifies its traffic by the *machine's* node boundaries.
    """

    def __init__(
        self, machine: MachineTopology, slots: Sequence[CoreSlot]
    ) -> None:
        if not slots:
            raise TopologyError("a placement needs at least one core slot")
        seen = set()
        for node, core in slots:
            if not 0 <= node < machine.nodes:
                raise TopologyError(
                    f"node {node} out of range [0, {machine.nodes})"
                )
            if not 0 <= core < machine.cores_per_node:
                raise TopologyError(
                    f"core {core} out of range [0, {machine.cores_per_node})"
                )
            if (node, core) in seen:
                raise TopologyError(
                    f"slot (node {node}, core {core}) reserved twice"
                )
            seen.add((node, core))
        self.machine = machine
        self.slots: Tuple[CoreSlot, ...] = tuple(
            (int(node), int(core)) for node, core in slots
        )

    @property
    def total_cores(self) -> int:
        return len(self.slots)

    @property
    def nodes(self) -> int:
        return len({node for node, _core in self.slots})

    def node_of(self, rank: int) -> int:
        self._check(rank)
        return self.slots[rank][0]

    def core_of(self, rank: int) -> int:
        self._check(rank)
        return self.slots[rank][1]

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of(rank_a) == self.node_of(rank_b)

    def ranks_on_node(self, node: int) -> List[int]:
        """Job-local ranks whose slot lives on machine node ``node``."""
        return [i for i, (n, _c) in enumerate(self.slots) if n == node]

    def node_leader(self, node: int) -> int:
        ranks = self.ranks_on_node(node)
        if not ranks:
            raise TopologyError(f"no ranks placed on node {node}")
        return ranks[0]

    def is_node_leader(self, rank: int) -> bool:
        return self.node_leader(self.node_of(rank)) == rank

    def leaders(self) -> List[int]:
        nodes = sorted({node for node, _core in self.slots})
        return [self.node_leader(node) for node in nodes]

    def describe(self) -> str:
        return (
            f"placement: {self.total_cores} core(s) across "
            f"{self.nodes} node(s) of [{self.machine.describe()}]"
        )

    def _check(self, rank: int) -> None:
        if not 0 <= rank < len(self.slots):
            raise TopologyError(
                f"rank {rank} out of range [0, {len(self.slots)})"
            )

    def __repr__(self) -> str:
        return f"PlacedTopology(slots={list(self.slots)})"


def single_node(cores: int) -> MachineTopology:
    """A one-node machine (pure shared memory), like one BG/Q node."""
    return MachineTopology(nodes=1, cores_per_node=cores)


def flat(ranks: int) -> MachineTopology:
    """A machine with one core per node: every rank pair is off-node.

    This models a classic MPI-everywhere view where no memory is shared, and
    is the default when callers do not care about architecture awareness.
    """
    return MachineTopology(nodes=ranks, cores_per_node=1)
