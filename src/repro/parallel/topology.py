"""Architecture topology model (hwloc substitute).

PUMI obtains "details of the host architecture using hwloc" to map each MPI
process to a node (largest shared-memory hardware entity) and each thread to a
processing unit (Section II-D).  No real hardware topology exists in this
simulation, so :class:`MachineTopology` is a declarative machine model:
``nodes`` nodes with ``cores_per_node`` processing units each.  Ranks (or
parts) are mapped to processing units in block order, which is exactly the
mapping PUMI uses: consecutive ranks fill a node before spilling to the next.

Every communication layer consults this object to classify traffic as
*on-node* (shared memory in the paper: implicit, cheap) versus *off-node*
(explicit message in distributed memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class MachineTopology:
    """A machine of ``nodes`` shared-memory nodes, each with ``cores_per_node``
    processing units.

    The total number of processing units bounds the number of ranks that can
    be mapped; mapping is block-wise (rank ``r`` lives on node
    ``r // cores_per_node``).
    """

    nodes: int
    cores_per_node: int

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"need at least one node, got {self.nodes}")
        if self.cores_per_node < 1:
            raise ValueError(
                f"need at least one core per node, got {self.cores_per_node}"
            )

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check(rank)
        return rank // self.cores_per_node

    def core_of(self, rank: int) -> int:
        """Processing-unit index of ``rank`` within its node."""
        self._check(rank)
        return rank % self.cores_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True when both ranks share a node's memory."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def ranks_on_node(self, node: int) -> range:
        """All ranks mapped to ``node``."""
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
        start = node * self.cores_per_node
        return range(start, start + self.cores_per_node)

    def node_leader(self, node: int) -> int:
        """The designated leader rank of ``node`` (its first rank)."""
        return self.ranks_on_node(node).start

    def is_node_leader(self, rank: int) -> bool:
        return self.core_of(rank) == 0

    def leaders(self) -> List[int]:
        """Leader rank of every node, in node order."""
        return [self.node_leader(n) for n in range(self.nodes)]

    def describe(self) -> str:
        return (
            f"machine: {self.nodes} node(s) x {self.cores_per_node} core(s) "
            f"= {self.total_cores} processing units"
        )

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.total_cores:
            raise ValueError(
                f"rank {rank} out of range [0, {self.total_cores})"
            )

    def __iter__(self) -> Iterator[Tuple[int, range]]:
        """Iterate ``(node, ranks_on_node)`` pairs."""
        for node in range(self.nodes):
            yield node, self.ranks_on_node(node)


def single_node(cores: int) -> MachineTopology:
    """A one-node machine (pure shared memory), like one BG/Q node."""
    return MachineTopology(nodes=1, cores_per_node=cores)


def flat(ranks: int) -> MachineTopology:
    """A machine with one core per node: every rank pair is off-node.

    This models a classic MPI-everywhere view where no memory is shared, and
    is the default when callers do not care about architecture awareness.
    """
    return MachineTopology(nodes=ranks, cores_per_node=1)
