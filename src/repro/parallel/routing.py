"""Message buffer management and topology-aware routing.

Section II-D lists "message passing control: message buffer management and
message routing by hardware topology and neighboring part recognition" among
PUMI's parallel control functionality.  Two pieces live here:

* :class:`BufferedRouter` — coalesces all messages bound for the same
  destination part into one wire message per superstep, the buffer-management
  optimization that keeps off-node message *counts* proportional to the
  neighborhood size rather than the payload count.
* :class:`NodeRouter` — routes off-node messages through node leaders
  (sender → its node leader → destination's node leader → receiver), so that
  between any two nodes at most one off-node message flows per superstep.
  On-node hops are shared-memory transfers.  This is the hardware-topology
  routing the two-level design enables.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from .network import Network, Message


class BufferedRouter:
    """Coalescing wrapper over a :class:`~repro.parallel.network.Network`.

    Calls to :meth:`post` accumulate payloads per ``(src, dst)`` pair;
    :meth:`exchange` ships each pair's payload list as a single network
    message and unpacks inboxes back into individual messages, preserving
    per-sender posting order.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._buffers: Dict[Tuple[int, int], List[Tuple[int, Any]]] = {}

    @property
    def nparts(self) -> int:
        return self.network.nparts

    def post(self, src: int, dst: int, tag: int, payload: Any) -> None:
        self._buffers.setdefault((src, dst), []).append((tag, payload))

    def exchange(self) -> Dict[int, List[Message]]:
        for (src, dst), bundle in sorted(self._buffers.items()):
            self.network.post(src, dst, 0, bundle)
        self._buffers.clear()
        raw = self.network.exchange()
        inboxes: Dict[int, List[Message]] = {p: [] for p in range(self.nparts)}
        for dst, messages in raw.items():
            for src, _tag, bundle in messages:
                for tag, payload in bundle:
                    inboxes[dst].append((src, tag, payload))
        return inboxes


class NodeRouter:
    """Route messages through node leaders to minimize off-node messages.

    With a machine of ``n`` nodes, a superstep's traffic costs at most
    ``n * (n - 1)`` off-node messages regardless of how many endpoint pairs
    communicated, at the price of two extra on-node hops per message.
    """

    #: Reserved tag marking a leader-to-leader bundle on the wire.
    BUNDLE_TAG = -714

    def __init__(self, network: Network) -> None:
        self.network = network
        self._pending: List[Tuple[int, int, int, Any]] = []

    @property
    def nparts(self) -> int:
        return self.network.nparts

    def post(self, src: int, dst: int, tag: int, payload: Any) -> None:
        if tag == self.BUNDLE_TAG:
            raise ValueError(f"tag {tag} is reserved for internal bundles")
        self._pending.append((src, dst, tag, payload))

    def exchange(self) -> Dict[int, List[Message]]:
        topo = self.network.topology
        inboxes: Dict[int, List[Message]] = {p: [] for p in range(self.nparts)}

        # Hop 1 (on-node): deliver locals directly; bundle off-node messages
        # per (source node, destination node) pair for the leaders.
        handoff: Dict[Tuple[int, int], List[Tuple[int, int, int, Any]]] = {}
        for src, dst, tag, payload in self._pending:
            if topo.same_node(src, dst):
                self.network.post(src, dst, tag, payload)
            else:
                key = (topo.node_of(src), topo.node_of(dst))
                handoff.setdefault(key, []).append((src, dst, tag, payload))
        self._pending.clear()

        # Hop 2 (off-node): one coalesced leader-to-leader message per pair.
        for (src_node, dst_node), bundle in sorted(handoff.items()):
            leader_src = min(topo.node_leader(src_node), self.nparts - 1)
            leader_dst = min(topo.node_leader(dst_node), self.nparts - 1)
            self.network.post(leader_src, leader_dst, self.BUNDLE_TAG, bundle)
        delivered = self.network.exchange()

        # Hop 3 (on-node): destination leaders fan bundles out locally.
        fanout = False
        for dst, messages in delivered.items():
            for src, tag, payload in messages:
                if tag == self.BUNDLE_TAG:
                    for orig_src, orig_dst, orig_tag, orig_payload in payload:
                        self.network.post(
                            dst, orig_dst, orig_tag, (orig_src, orig_payload)
                        )
                        fanout = True
                else:
                    inboxes[dst].append((src, tag, payload))
        if fanout:
            final = self.network.exchange()
            for dst, messages in final.items():
                for _leader, tag, wrapped in messages:
                    orig_src, orig_payload = wrapped
                    inboxes[dst].append((orig_src, tag, orig_payload))
        return inboxes
