"""Architecture topology detection (the hwloc entry point).

"Architecture topology detection: details of the host architecture are
obtained using hwloc" (paper, Section II-D).  Without hwloc, this module
inspects what the Python runtime exposes — logical CPU count, and on Linux
the physical package/core layout from ``/sys`` — and produces the
:class:`~repro.parallel.topology.MachineTopology` the rest of the stack
consumes.  Callers that want a specific virtual machine (e.g. "pretend this
laptop is 4 BG/Q nodes") use :func:`virtual` instead.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from .topology import MachineTopology


def _physical_packages() -> Optional[int]:
    """Number of physical CPU packages from /sys, or None off-Linux."""
    base = Path("/sys/devices/system/cpu")
    if not base.exists():
        return None
    packages = set()
    for cpu_dir in base.glob("cpu[0-9]*"):
        pkg_file = cpu_dir / "topology" / "physical_package_id"
        try:
            packages.add(int(pkg_file.read_text().strip()))
        except (OSError, ValueError):
            continue
    return len(packages) or None


def detect() -> MachineTopology:
    """Topology of the host machine: packages as nodes, CPUs as cores.

    A single-package (or undetectable) host detects as one shared-memory
    node with ``os.cpu_count()`` processing units — the correct model for a
    laptop, and the conservative fallback everywhere else.
    """
    cpus = os.cpu_count() or 1
    packages = _physical_packages() or 1
    cores = max(cpus // packages, 1)
    return MachineTopology(nodes=packages, cores_per_node=cores)


def virtual(nodes: int, cores_per_node: Optional[int] = None) -> MachineTopology:
    """A declared machine: ``nodes`` nodes of ``cores_per_node`` cores.

    With ``cores_per_node`` omitted the host's CPUs are divided evenly
    (useful for simulating multi-node runs on one box).
    """
    if cores_per_node is None:
        cpus = os.cpu_count() or nodes
        cores_per_node = max(cpus // nodes, 1)
    return MachineTopology(nodes=nodes, cores_per_node=cores_per_node)
