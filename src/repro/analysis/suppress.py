"""Suppression policy shared by the syntactic lint and the flow analyzer.

Three mechanisms, one module, so ``repro lint`` and ``repro analyze`` agree:

* **line suppression** — flake8-style ``# noqa`` on the offending line: a
  blanket ``# noqa`` suppresses every code, ``# noqa: SPMD003`` one code,
  ``# noqa: SPMD001, SPMD101`` several.
* **file suppression** — a ``# repro: noqa`` comment in the first
  :data:`FILE_HEADER_LINES` lines suppresses the whole file (generated
  files, vendored code).
* **justification enforcement** — a code-listing suppression must carry a
  justification after the codes (``# noqa: SPMD003 — fixture exercises the
  hang path``).  A bare ``# noqa: SPMD003`` is itself reported as
  **SPMD007**: unreviewed suppressions are how real hazards hide.  A
  blanket ``# noqa`` stays legal (it also suppresses the SPMD007 on its own
  line), preserving compatibility with third-party tool conventions.
"""

from __future__ import annotations

import re
from typing import List, Sequence

from .rules.base import Finding

#: Lines at the top of a file searched for ``# repro: noqa``.
FILE_HEADER_LINES = 5

_NOQA_RE = re.compile(
    r"#\s*noqa(?!\w)(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
    r"(?P<rest>[^#]*))?",
    re.IGNORECASE,
)
_FILE_NOQA_RE = re.compile(r"#\s*repro\s*:\s*noqa\b", re.IGNORECASE)
#: A justification needs at least one real word after the code list.
_JUSTIFIED_RE = re.compile(r"[A-Za-z][A-Za-z]+")

SPMD007_HINT = (
    "add a justification after the code list "
    "(# noqa: SPMD00N — why this is intentional)"
)


def file_suppressed(lines: Sequence[str]) -> bool:
    """Whether a ``# repro: noqa`` header opts the whole file out."""
    return any(
        _FILE_NOQA_RE.search(line)
        for line in lines[:FILE_HEADER_LINES]
    )


def line_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    """Whether a same-line ``# noqa`` comment covers this finding."""
    if not 0 < finding.line <= len(lines):
        return False
    match = _NOQA_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True  # blanket "# noqa"
    allowed = {code.strip().upper() for code in codes.split(",")}
    return finding.code in allowed


def unjustified_findings(path: str, lines: Sequence[str]) -> List[Finding]:
    """SPMD007 findings for code-listing suppressions with no rationale."""
    findings: List[Finding] = []
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match is None or match.group("codes") is None:
            continue
        rest = match.group("rest") or ""
        if _JUSTIFIED_RE.search(rest):
            continue
        findings.append(
            Finding(
                path=path,
                line=lineno,
                col=match.start(),
                code="SPMD007",
                message=(
                    f"suppression '# noqa: {match.group('codes').strip()}' "
                    f"has no justification; say why the hazard is "
                    f"intentional"
                ),
                hint=SPMD007_HINT,
            )
        )
    return findings


def apply(
    findings: List[Finding],
    source: str,
    path: str,
    check_justification: bool = True,
) -> List[Finding]:
    """Full suppression pass for one file's findings.

    Drops findings covered by file- or line-level suppressions, and (unless
    ``check_justification`` is off) appends SPMD007 findings for bare
    code-listing suppressions — which are themselves subject to blanket
    ``# noqa`` and file-level suppression.
    """
    lines = source.splitlines()
    if file_suppressed(lines):
        return []
    if check_justification:
        findings = findings + unjustified_findings(path, lines)
    return [f for f in findings if not line_suppressed(f, lines)]
