"""The SPMD flow-analysis engine: ``python -m repro analyze``.

Pipeline, per invocation:

1. parse every ``.py`` file under the given paths into one
   :class:`~repro.analysis.flow.callgraph.Program` (whole-program, so taint
   follows calls across files);
2. build each function's CFG once, then iterate the **summary fixpoint**:
   per round, recompute each function's dataflow environments (which depend
   on callee summaries), its return tokens, collective sequence, and
   divergence-prone parameters, until no summary changes;
3. re-scan every function with reporting enabled, emitting SPMD101–105
   findings with the converged summaries;
4. apply the shared suppression policy (``# noqa`` with justification,
   ``# repro: noqa`` file headers, SPMD007 for bare suppressions);
5. diff against the committed baseline (``repro.analysis/1``) and render
   text, JSON, or SARIF — all three byte-deterministic for identical
   inputs, which CI verifies by diffing two runs.

The baseline stores findings with paths relative to the baseline file's own
directory, so a baseline committed at the repo root matches regardless of
how the analyzed paths were spelled on the command line.
"""

from __future__ import annotations

import ast
import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import suppress
from ..lint import iter_python_files
from ..rules.base import Finding
from ..rules.communication import COLLECTIVE_CALLS
from .callgraph import FunctionInfo, Program
from .cfg import CFG, build_cfg, dataflow
from .rules import HINTS, FunctionScan
from .taint import (
    EMPTY,
    Evaluator,
    Summary,
    Tokens,
    initial_env,
    make_transfer,
)

SCHEMA = "repro.analysis/1"

#: Fixpoint safety valve; token sets are finite so convergence is fast, and
#: genuine recursion cycles stabilize within a few rounds.
MAX_ROUNDS = 10


class FlowAnalyzer:
    """Whole-program analysis over a set of parsed modules."""

    def __init__(self, sources: Dict[str, str]) -> None:
        self.sources = sources
        self.program = Program(COLLECTIVE_CALLS)
        self.parse_findings: List[Finding] = []
        for path in sorted(sources):
            try:
                tree = ast.parse(sources[path], filename=path)
            except SyntaxError as exc:
                self.parse_findings.append(
                    Finding(
                        path=path,
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        code="SPMD000",
                        message=f"syntax error: {exc.msg}",
                        hint="fix the syntax error so the file can be analyzed",
                    )
                )
                continue
            self.program.add_module(path, tree)
        self._cfgs: Dict[int, CFG] = {}

    # -- machinery ---------------------------------------------------------

    def _cfg(self, info: FunctionInfo) -> CFG:
        key = id(info.node)
        if key not in self._cfgs:
            self._cfgs[key] = build_cfg(list(info.node.body))  # type: ignore[attr-defined]
        return self._cfgs[key]

    def _envs(
        self, info: FunctionInfo, summaries: Dict[int, Summary]
    ) -> Dict[int, Dict[str, Tokens]]:
        evaluator = Evaluator(self.program, summaries, info)
        return dataflow(
            self._cfg(info), initial_env(info), make_transfer(evaluator)
        )

    def _ret_tokens(
        self,
        info: FunctionInfo,
        env_at: Dict[int, Dict[str, Tokens]],
        summaries: Dict[int, Summary],
    ) -> Tokens:
        evaluator = Evaluator(self.program, summaries, info)
        out: Tokens = EMPTY
        for stmt in self._iter_own_statements(info.node):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                env = env_at.get(id(stmt), {})
                out |= evaluator.tokens(stmt.value, env)
        return frozenset(t for t in out if not t.startswith("DIRTY:"))

    @staticmethod
    def _iter_own_statements(node: ast.AST):
        """Statements of a function excluding nested def/class bodies."""
        stack = list(getattr(node, "body", []))
        while stack:
            stmt = stack.pop()
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield stmt
            for field in ("body", "orelse", "finalbody"):
                stack.extend(getattr(stmt, field, []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                stack.extend(handler.body)

    # -- analysis ----------------------------------------------------------

    def run(self) -> List[Finding]:
        functions = self.program.functions
        summaries: Dict[int, Summary] = {
            id(f.node): Summary() for f in functions
        }
        for _round in range(MAX_ROUNDS):
            changed = False
            for info in functions:
                env_at = self._envs(info, summaries)
                scan = FunctionScan(
                    info, self.program, summaries, env_at, report=False
                ).run()
                new = Summary(
                    ret=self._ret_tokens(info, env_at, summaries),
                    seq=scan.seq,
                    divergence_params=scan.divergence_params,
                )
                if new.key() != summaries[id(info.node)].key():
                    summaries[id(info.node)] = new
                    changed = True
            if not changed:
                break

        findings = list(self.parse_findings)
        for info in functions:
            env_at = self._envs(info, summaries)
            scan = FunctionScan(
                info, self.program, summaries, env_at, report=True
            ).run()
            findings.extend(scan.findings)

        findings = self._suppress_and_sort(findings)
        return findings

    def _suppress_and_sort(self, findings: List[Finding]) -> List[Finding]:
        by_path: Dict[str, List[Finding]] = {}
        for finding in findings:
            by_path.setdefault(finding.path, []).append(finding)
        out: List[Finding] = []
        for path in sorted(set(by_path) | set(self.sources)):
            source = self.sources.get(path)
            if source is None:
                out.extend(by_path.get(path, []))
                continue
            out.extend(
                suppress.apply(by_path.get(path, []), source, path)
            )
        seen: Set[Tuple] = set()
        unique: List[Finding] = []
        for finding in sorted(
            out, key=lambda f: (f.path, f.line, f.col, f.code, f.message)
        ):
            key = (finding.path, finding.line, finding.col, finding.code)
            if key not in seen:
                seen.add(key)
                unique.append(finding)
        return unique


def analyze_source(source: str, path: str = "<string>") -> List[Finding]:
    """Analyze one source string (the fixture-corpus entry point)."""
    return FlowAnalyzer({path: source}).run()


def analyze_paths(paths: Iterable[Path]) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths`` as one program."""
    sources: Dict[str, str] = {}
    for file_path in iter_python_files(paths):
        sources[str(file_path)] = Path(file_path).read_text(encoding="utf-8")
    return FlowAnalyzer(sources).run()


# -- baseline --------------------------------------------------------------


def _baseline_key(finding: Finding, anchor: Path) -> Tuple:
    path = Path(finding.path)
    try:
        path = path.resolve().relative_to(anchor.resolve())
    except (ValueError, OSError):
        pass
    return (path.as_posix(), finding.code, finding.line, finding.message)


def write_baseline(
    baseline_path: Path, findings: Sequence[Finding]
) -> None:
    anchor = baseline_path.parent
    entries = [
        {
            "path": _baseline_key(f, anchor)[0],
            "code": f.code,
            "line": f.line,
            "message": f.message,
        }
        for f in findings
    ]
    entries.sort(key=lambda e: (e["path"], e["line"], e["code"]))
    doc = {"schema": SCHEMA, "findings": entries}
    baseline_path.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(baseline_path: Path) -> Set[Tuple]:
    doc = json.loads(baseline_path.read_text(encoding="utf-8"))
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"baseline {baseline_path} has schema "
            f"{doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    return {
        (e["path"], e["code"], e["line"], e["message"])
        for e in doc.get("findings", [])
    }


def split_baselined(
    findings: Sequence[Finding],
    baseline: Set[Tuple],
    anchor: Path,
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, baselined)."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        if _baseline_key(finding, anchor) in baseline:
            old.append(finding)
        else:
            new.append(finding)
    return new, old


# -- output formats --------------------------------------------------------


def format_text(
    findings: Sequence[Finding], baselined: Sequence[Finding] = ()
) -> str:
    lines = [f"{f.format()}\n    hint: {f.hint}" for f in findings]
    summary = (
        f"{len(findings)} new finding(s)"
        if findings
        else "clean: 0 new findings"
    )
    if baselined:
        summary += f" ({len(baselined)} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def format_json(
    findings: Sequence[Finding], baselined: Sequence[Finding] = ()
) -> str:
    counts: Dict[str, int] = {}
    for finding in list(findings) + list(baselined):
        counts[finding.code] = counts.get(finding.code, 0) + 1
    doc = {
        "schema": SCHEMA,
        "counts": counts,
        "new": [asdict(f) for f in findings],
        "baselined": [asdict(f) for f in baselined],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def format_sarif(
    findings: Sequence[Finding], baselined: Sequence[Finding] = ()
) -> str:
    """Minimal SARIF 2.1.0 — one run, one result per finding."""
    rule_ids = sorted(
        {f.code for f in list(findings) + list(baselined)} | set(HINTS)
    )
    results = []
    for finding, suppressed in [(f, False) for f in findings] + [
        (f, True) for f in baselined
    ]:
        result = {
            "ruleId": finding.code,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(finding.path).as_posix()
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if suppressed:
            result["suppressions"] = [{"kind": "external"}]
        results.append(result)
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": HINTS.get(rule_id, rule_id)
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


# -- CLI -------------------------------------------------------------------


def default_target() -> Path:
    """With no explicit paths, analyze the installed ``repro`` package."""
    return Path(__file__).resolve().parent.parent.parent


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="SPMD flow analysis (SPMD101..SPMD105)",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="accepted-findings file (repro.analysis/1)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings",
    )
    args = parser.parse_args(argv)
    paths = [Path(p) for p in args.paths] or [default_target()]
    try:
        findings = analyze_paths(paths)
    except OSError as exc:
        print(f"repro analyze: error: {exc}", file=sys.stderr)
        return 2

    baselined: List[Finding] = []
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if args.write_baseline:
            write_baseline(baseline_path, findings)
            print(
                f"wrote {len(findings)} finding(s) to {baseline_path}",
                file=sys.stderr,
            )
            return 0
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"repro analyze: bad baseline: {exc}", file=sys.stderr)
            return 2
        findings, baselined = split_baselined(
            findings, baseline, baseline_path.parent
        )
    elif args.write_baseline:
        print(
            "repro analyze: --write-baseline requires --baseline",
            file=sys.stderr,
        )
        return 2

    formatter = {
        "text": format_text,
        "json": format_json,
        "sarif": format_sarif,
    }[args.format]
    print(formatter(findings, baselined))
    return 1 if findings else 0
