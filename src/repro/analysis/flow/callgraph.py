"""Whole-program model for the SPMD flow analysis.

The analyzer works on a *set* of modules at once (every file handed to
``python -m repro analyze``), so taint can follow calls across files.  This
module builds the program model the dataflow consumes:

* :class:`FunctionInfo` — one ``def`` (module function or method) with its
  parameter list and owning class;
* :class:`ClassInfo` — class-level mutable attributes (state shared by every
  rank thread touching the class) and ``self.x = <collective>`` aliases;
* :class:`Program` — the registry, with *name-based* call resolution: a call
  to ``helper(...)`` or ``obj.helper(...)`` resolves to every analyzed
  function named ``helper`` (methods match attribute calls only).  That is
  deliberately the same precision class as a class-hierarchy-less call graph
  — sound for taint union, cheap to build, and stable to iterate.

Function *summaries* (return-taint, collective sequences, divergence-prone
parameters) are computed by the engine's fixpoint in
:mod:`repro.analysis.flow.taint`; this module only answers "which defs can
this call reach".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class FunctionInfo:
    """One analyzed ``def`` and where it lives."""

    path: str
    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def param_names(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs + args.args]
        names += [a.arg for a in args.kwonlyargs]
        return names


@dataclass
class ClassInfo:
    """Shared-state surface of one class."""

    path: str
    name: str
    #: Class-body names bound to mutable literals (``cache = {}``): state
    #: shared across every rank thread unless shadowed per instance.
    mutable_attrs: Set[str] = field(default_factory=set)
    #: ``self.<attr>`` names assigned a collective bound-method anywhere in
    #: the class (``self._bcast = world.bcast``), mapped to the op name.
    collective_attrs: Dict[str, str] = field(default_factory=dict)


def _is_mutable_literal(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("list", "dict", "set", "bytearray")
    )


class Program:
    """Registry of every function, class, and module in the analyzed set."""

    def __init__(self, collective_calls: Set[str]) -> None:
        self._collective_calls = collective_calls
        self.modules: List[Tuple[str, ast.Module]] = []
        self.functions: List[FunctionInfo] = []
        self.classes: Dict[str, ClassInfo] = {}
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        self._method_names: Set[str] = set()
        #: Module-level mutable globals per path: name -> line of binding.
        self.module_globals: Dict[str, Dict[str, int]] = {}

    # -- construction ------------------------------------------------------

    def add_module(self, path: str, tree: ast.Module) -> None:
        self.modules.append((path, tree))
        self.module_globals[path] = {}
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(path, stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(path, stmt)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.module_globals[path].setdefault(
                            target.id, stmt.lineno
                        )

    def _add_function(
        self, path: str, node: ast.AST, class_name: Optional[str]
    ) -> None:
        qual = f"{class_name}.{node.name}" if class_name else node.name  # type: ignore[attr-defined]
        info = FunctionInfo(
            path=path, qualname=qual, node=node, class_name=class_name
        )
        self.functions.append(info)
        self._by_name.setdefault(info.name, []).append(info)
        if class_name is not None:
            self._method_names.add(info.name)
        # Nested defs are analyzed too (their bodies can hold hazards), but
        # they are not call-resolution targets by outer name collision.
        for sub in ast.walk(node):
            if sub is node:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                pass  # analyzed through the enclosing function's traversal

    def _add_class(self, path: str, node: ast.ClassDef) -> None:
        info = ClassInfo(path=path, name=node.name)
        assigned_plain: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(path, stmt, node.name)
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                assigned_plain.add(target.attr)
                                op = self._collective_attr(sub.value)
                                if op is not None:
                                    info.collective_attrs[target.attr] = op
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and _is_mutable_literal(
                        stmt.value
                    ):
                        info.mutable_attrs.add(target.id)
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.value is not None
                    and _is_mutable_literal(stmt.value)
                ):
                    info.mutable_attrs.add(stmt.target.id)
        # A per-instance rebinding in __init__ etc. shadows the class var for
        # that instance; drop those from the shared-state surface.
        info.mutable_attrs -= assigned_plain
        self.classes[node.name] = info

    def _collective_attr(self, value: ast.AST) -> Optional[str]:
        """``<expr>.bcast`` (unCalled) names a collective bound method."""
        if (
            isinstance(value, ast.Attribute)
            and value.attr in self._collective_calls
        ):
            return value.attr
        return None

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, call: ast.Call) -> List[FunctionInfo]:
        """Every analyzed ``def`` a call could reach, by name."""
        func = call.func
        if isinstance(func, ast.Name):
            # Bare-name call: module functions only (an unbound method would
            # need an explicit class qualifier we don't track).
            return [
                f for f in self._by_name.get(func.id, []) if not f.is_method
            ]
        if isinstance(func, ast.Attribute):
            candidates = self._by_name.get(func.attr, [])
            if isinstance(func.value, ast.Name) and func.value.id in (
                "self",
                "cls",
            ):
                return list(candidates)
            return [f for f in candidates if f.is_method]
        return []

    def class_of(self, info: FunctionInfo) -> Optional[ClassInfo]:
        if info.class_name is None:
            return None
        return self.classes.get(info.class_name)
