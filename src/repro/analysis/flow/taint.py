"""Rank-taint lattice and transfer functions for the SPMD flow analysis.

The abstract domain is a *token set* per name — the powerset lattice over a
small token universe, joined by union:

``RANK``
    the value derives from the calling rank's identity (``world.rank``,
    ``comm.rank``, ``Get_rank()``, asymmetric collective results like
    ``scatter``/``gather``/``scan``, or any ``*_rank`` name);
``ND:<kind>``
    the value is nondeterministic across runs (wall clock, unseeded
    ``random``, ``id()``, ``hash()``, iteration order of a set);
``SET``
    the value is an unordered container (iterating it yields ``ND:set``);
``COLL:<op>``
    the value is a bound collective method (``b = world.bcast``) — calling
    it is calling the collective;
``P:<i>``
    the value derives from parameter *i* of the enclosing function.  These
    symbolic tokens are how summaries stay polymorphic: a function is
    analyzed once with each parameter bound to its own token, and call
    sites substitute actual argument tokens for ``P:<i>``.
``DIRTY:<line>``
    carried by a *field-like* object after an owner-side mutation at
    ``<line>`` with no ``synchronize``/``accumulate`` yet on this path
    (the SPMD104 state, riding the same dataflow).

Taint propagates through assignments, arithmetic, containers, f-strings,
attribute loads, and — via :class:`Summary` substitution — interprocedural
call arguments and returns.  Order-insensitive reductions (``sorted``,
``len``, ``min``/``max``/``sum``) strip the order tokens; symmetric
collectives (``bcast``, ``allreduce``, ``allgather``, ``alltoall``) return
*clean* values because every rank receives the same result.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..rules.communication import COLLECTIVE_CALLS
from .callgraph import ClassInfo, FunctionInfo, Program

Tokens = FrozenSet[str]
EMPTY: Tokens = frozenset()
RANK = "RANK"

#: Collectives whose *result* is identical on every rank (replicated data).
SYMMETRIC_COLLECTIVES: Set[str] = {
    "barrier",
    "bcast",
    "allreduce",
    "allgather",
    "alltoall",
}

#: Collectives whose result differs per rank (root-only or prefix results).
ASYMMETRIC_COLLECTIVES: Set[str] = {
    "scatter",
    "gather",
    "reduce",
    "scan",
    "exscan",
}

#: Rank-identity producing calls.
RANK_CALLS: Set[str] = {"Get_rank", "world_rank_of"}

#: ``module.attr`` call patterns that yield nondeterministic values.
_ND_TIME_ATTRS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "now",
    "utcnow",
    "today",
}
_ND_MODULES = {"random"}  # module-level RNG calls: random.random(), ...

#: Constructors / set methods producing unordered containers.
SET_PRODUCERS: Set[str] = {
    "set",
    "frozenset",
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "keys",  # only flagged when the receiver is itself a SET — see _call
}

#: Order-insensitive consumers: strip SET / ND:set from their argument.
ORDER_INSENSITIVE: Set[str] = {"sorted", "len", "min", "max", "sum", "any", "all"}

#: Sequencing constructors: freeze a SET's (arbitrary) order into a value.
SEQUENCING: Set[str] = {"list", "tuple"}

#: Owner-side field mutators (mark the receiver DIRTY for SPMD104).
FIELD_MUTATORS: Set[str] = {
    "set",
    "set_all",
    "set_from_coords",
    "set_owned",
    "zero_all",
    "assign",
    "axpy",
    "add_local",
}

#: Ghost/copy synchronizers (clear DIRTY on their field argument/receiver).
SYNC_CALLS: Set[str] = {
    "synchronize",
    "accumulate",
    "sync",
    "sync_ghosts",
    "update_ghosts",
}


def _rank_named(name: str) -> bool:
    return name in ("rank", "vrank") or name.endswith("_rank")


@dataclass
class Summary:
    """Interprocedural facts about one function, computed to fixpoint."""

    #: Tokens of the return value (``P:<i>`` still symbolic).
    ret: Tokens = EMPTY
    #: Flat collective-op sequence the function body performs.
    seq: Tuple[str, ...] = ()
    #: Parameter indices that, when rank-tainted at a call site, guard
    #: collectives behind divergent control flow inside this function.
    divergence_params: FrozenSet[int] = frozenset()

    def key(self) -> Tuple:
        return (self.ret, self.seq, self.divergence_params)


class Evaluator:
    """Expression-token evaluation for one function's body."""

    def __init__(
        self,
        program: Program,
        summaries: Dict[int, Summary],
        info: FunctionInfo,
    ) -> None:
        self.program = program
        self.summaries = summaries
        self.info = info
        self.cls: Optional[ClassInfo] = program.class_of(info)

    # -- entry point -------------------------------------------------------

    def tokens(self, expr: Optional[ast.AST], env: Dict[str, Tokens]) -> Tokens:
        if expr is None:
            return EMPTY
        method = getattr(self, "_eval_" + type(expr).__name__, None)
        if method is not None:
            return method(expr, env)
        # Default: union over child expressions (BoolOp, BinOp, Compare,
        # UnaryOp, IfExp, Starred, JoinedStr, FormattedValue, Slice, ...).
        out: Tokens = EMPTY
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                out |= self.tokens(child, env)
        return out

    # -- atoms -------------------------------------------------------------

    def _eval_Constant(self, expr: ast.Constant, env) -> Tokens:
        return EMPTY

    def _eval_Name(self, expr: ast.Name, env) -> Tokens:
        out = env.get(expr.id, EMPTY)
        if _rank_named(expr.id):
            out |= {RANK}
        return out

    def _eval_Attribute(self, expr: ast.Attribute, env) -> Tokens:
        out = self.tokens(expr.value, env)
        if _rank_named(expr.attr):
            return out | {RANK}
        if (
            isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            key = f"self.{expr.attr}"
            out |= env.get(key, EMPTY)
            if self.cls is not None and expr.attr in self.cls.collective_attrs:
                out |= {f"COLL:{self.cls.collective_attrs[expr.attr]}"}
        if expr.attr in COLLECTIVE_CALLS:
            # An *unCalled* collective attribute is a bound collective.
            out |= {f"COLL:{expr.attr}"}
        return out

    def _eval_Lambda(self, expr: ast.Lambda, env) -> Tokens:
        return EMPTY

    # -- containers --------------------------------------------------------

    def _eval_Set(self, expr: ast.Set, env) -> Tokens:
        out: Tokens = frozenset({"SET"})
        for elt in expr.elts:
            out |= self.tokens(elt, env)
        return out

    def _eval_SetComp(self, expr: ast.SetComp, env) -> Tokens:
        return self._comprehension(expr, env, [expr.elt]) | {"SET"}

    def _eval_ListComp(self, expr: ast.ListComp, env) -> Tokens:
        return self._comprehension(expr, env, [expr.elt])

    def _eval_GeneratorExp(self, expr: ast.GeneratorExp, env) -> Tokens:
        return self._comprehension(expr, env, [expr.elt])

    def _eval_DictComp(self, expr: ast.DictComp, env) -> Tokens:
        return self._comprehension(expr, env, [expr.key, expr.value])

    def _comprehension(self, expr, env, elts: List[ast.expr]) -> Tokens:
        out: Tokens = EMPTY
        inner = dict(env)
        for gen in expr.generators:
            iter_tokens = self.tokens(gen.iter, inner)
            bound = iter_tokens - {"SET"}
            if "SET" in iter_tokens:
                # Iterating an unordered container injects its hash order.
                bound |= {"ND:set"}
                out |= {"ND:set"}
            for name in _target_names(gen.target):
                inner[name] = bound
        for elt in elts:
            out |= self.tokens(elt, inner)
        return out

    def _eval_Subscript(self, expr: ast.Subscript, env) -> Tokens:
        return (
            self.tokens(expr.value, env) - {"SET"}
        ) | self.tokens(expr.slice, env)

    # -- calls -------------------------------------------------------------

    def _collective_op(
        self, call: ast.Call, env: Dict[str, Tokens]
    ) -> Optional[str]:
        """The collective op a call invokes, through aliases if needed."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in COLLECTIVE_CALLS:
            return func.attr
        if isinstance(func, ast.Name) and func.id in COLLECTIVE_CALLS:
            return func.id
        for token in self.tokens(func, env):
            if token.startswith("COLL:"):
                return token[5:]
        return None

    def _arg_tokens(self, call: ast.Call, env) -> List[Tokens]:
        return [self.tokens(arg, env) for arg in call.args] + [
            self.tokens(kw.value, env) for kw in call.keywords
        ]

    def _eval_Call(self, expr: ast.Call, env) -> Tokens:
        func = expr.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr

        args = self._arg_tokens(expr, env)
        merged: Tokens = EMPTY
        for tokens in args:
            merged |= tokens

        # Nondeterminism sources.
        nd = self._nondet_kind(expr)
        if nd is not None:
            return merged | {f"ND:{nd}"}
        # Rank identity.
        if name in RANK_CALLS:
            return merged | {RANK}
        # Collectives (incl. aliased): symmetric results are clean.
        op = self._collective_op(expr, env)
        if op is not None:
            payload = merged - {"SET"}
            if op in ASYMMETRIC_COLLECTIVES:
                return payload | {RANK}
            if op in SYMMETRIC_COLLECTIVES:
                return payload - {RANK}
            return payload
        # Order-insensitive reductions launder set order (and sorted() also
        # launders a previously frozen arbitrary order).
        if name in ORDER_INSENSITIVE:
            return merged - {"SET", "ND:set"}
        if name in SEQUENCING:
            if any("SET" in tokens for tokens in args):
                return (merged - {"SET"}) | {"ND:set"}
            return merged
        if name in SET_PRODUCERS:
            receiver = (
                self.tokens(func.value, env)
                if isinstance(func, ast.Attribute)
                else EMPTY
            )
            if name == "keys" and "SET" not in receiver:
                return merged | receiver  # dict order is insertion order
            return merged | receiver | {"SET"}
        # Analyzed functions: substitute argument tokens into the summary.
        resolved = self.program.resolve_call(expr)
        if resolved:
            out: Tokens = EMPTY
            for target in resolved:
                out |= self._substitute(target, expr, env)
            return out
        # Unknown call: taint flows args+receiver -> result, but a result is
        # neither a bound collective nor (without evidence) an unordered set.
        if isinstance(func, ast.Attribute):
            merged |= self.tokens(func.value, env)
        return frozenset(
            t for t in merged if not t.startswith(("COLL:", "DIRTY:"))
        ) - {"SET"}

    def _substitute(
        self, target: FunctionInfo, call: ast.Call, env
    ) -> Tokens:
        summary = self.summaries.get(id(target.node))
        if summary is None:
            return EMPTY
        actuals = self.call_arg_tokens(target, call, env)
        out: Set[str] = set()
        for token in summary.ret:
            if token.startswith("P:"):
                index = int(token[2:])
                if 0 <= index < len(actuals):
                    out |= actuals[index]
            else:
                out.add(token)
        return frozenset(out)

    def call_arg_tokens(
        self, target: FunctionInfo, call: ast.Call, env
    ) -> List[Tokens]:
        """Actual tokens per *parameter index* of ``target`` for this call."""
        params = target.param_names()
        actuals: List[Tokens] = [EMPTY] * len(params)
        offset = 0
        if target.is_method and isinstance(call.func, ast.Attribute):
            if params:
                actuals[0] = self.tokens(call.func.value, env)
            offset = 1
        for i, arg in enumerate(call.args):
            index = i + offset
            if index < len(actuals):
                actuals[index] = self.tokens(arg, env)
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in params:
                actuals[params.index(kw.arg)] = self.tokens(kw.value, env)
        return actuals

    def _nondet_kind(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                return "id"
            if func.id == "hash":
                return "hash"
            if func.id in ("perf_counter", "monotonic", "time_ns"):
                return "time"
            return None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = func.value.id
            if base in ("time", "datetime") and func.attr in _ND_TIME_ATTRS:
                return "time"
            if base in _ND_MODULES:
                return "random"
            if base == "os" and func.attr == "urandom":
                return "random"
            if base == "uuid" and func.attr in ("uuid1", "uuid4"):
                return "random"
            if base == "secrets":
                return "random"
        return None


def _target_names(target: ast.AST):
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            yield sub.id


def _bind(
    target: ast.AST,
    value_tokens: Tokens,
    env: Dict[str, Tokens],
) -> None:
    if isinstance(target, ast.Name):
        env[target.id] = value_tokens
    elif isinstance(target, ast.Attribute):
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            env[f"self.{target.attr}"] = value_tokens
    elif isinstance(target, ast.Starred):
        _bind(target.value, value_tokens, env)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bind(elt, value_tokens, env)
    # Subscript stores do not rebind the container's tokens.


def _receiver_name(func: ast.AST) -> Optional[str]:
    """Base name of a method receiver (``f.x.m`` -> ``f``)."""
    expr = func.value if isinstance(func, ast.Attribute) else None
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _effect_roots(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions a statement evaluates *itself*.

    Compound statements contribute only their headers — their bodies flow
    through the CFG as separate blocks, so walking them here would apply
    body effects unconditionally (e.g. a ``synchronize`` under ``if`` would
    wrongly clear DIRTY on the skip path too).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, ast.ExceptHandler)):
        return []
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    return [stmt]


def _field_effects(stmt: ast.stmt, env: Dict[str, Tokens]) -> None:
    """Apply DIRTY/sync effects of calls a statement itself evaluates."""
    for root in _effect_roots(stmt):
        _field_effects_expr(root, env)


def _field_effects_expr(root: ast.AST, env: Dict[str, Tokens]) -> None:
    for call in ast.walk(root):
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        if isinstance(func, ast.Attribute):
            name = func.attr
            receiver = _receiver_name(func)
        elif isinstance(func, ast.Name):
            name = func.id
            receiver = None
        else:
            continue
        if name in SYNC_CALLS:
            targets = [receiver] if receiver is not None else []
            targets += [
                arg.id for arg in call.args if isinstance(arg, ast.Name)
            ]
            for target in targets:
                if target in env:
                    env[target] = frozenset(
                        t for t in env[target] if not t.startswith("DIRTY:")
                    )
        elif name in FIELD_MUTATORS and receiver is not None:
            env[receiver] = env.get(receiver, EMPTY) | {
                f"DIRTY:{call.lineno}"
            }


def make_transfer(evaluator: Evaluator):
    """Per-statement transfer for :func:`repro.analysis.flow.cfg.dataflow`."""

    def transfer(
        stmt: ast.stmt, env: Dict[str, Tokens]
    ) -> Dict[str, Tokens]:
        env = dict(env)
        if isinstance(stmt, ast.Assign):
            tokens = evaluator.tokens(stmt.value, env)
            if (
                isinstance(stmt.value, (ast.Tuple, ast.List))
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], (ast.Tuple, ast.List))
                and len(stmt.targets[0].elts) == len(stmt.value.elts)
            ):
                for tgt, val in zip(
                    stmt.targets[0].elts, stmt.value.elts
                ):
                    _bind(tgt, evaluator.tokens(val, env), env)
            else:
                for target in stmt.targets:
                    _bind(target, tokens, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            _bind(stmt.target, evaluator.tokens(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            extra = evaluator.tokens(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = env.get(stmt.target.id, EMPTY) | extra
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tokens = evaluator.tokens(stmt.iter, env)
            bound = iter_tokens - {"SET"}
            if "SET" in iter_tokens:
                bound |= {"ND:set"}
            for name in _target_names(stmt.target):
                env[name] = bound
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    _bind(
                        item.optional_vars,
                        evaluator.tokens(item.context_expr, env),
                        env,
                    )
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                env[stmt.name] = EMPTY
        _field_effects(stmt, env)
        return env

    return transfer


def initial_env(info: FunctionInfo) -> Dict[str, Tokens]:
    """Parameter environment: each parameter bound to its symbolic token."""
    env: Dict[str, Tokens] = {}
    for index, name in enumerate(info.param_names()):
        tokens: Set[str] = {f"P:{index}"}
        if _rank_named(name):
            tokens.add(RANK)
        env[name] = frozenset(tokens)
    return env
