"""Control-flow graphs over Python function bodies.

A :class:`CFG` is the substrate of the SPMD flow analyses: basic blocks of
statements connected by control edges, built from the structured AST of one
function (or a module body treated as a zero-argument function).  Compound
statements appear *in* a block as their own header — an ``If`` node ends the
block that evaluates its test, a ``While``/``For`` node forms a loop header
block — and their bodies live in successor blocks.  Transfer functions
therefore apply only the header effect of a compound node (e.g. the loop
target binding of a ``For``), never its body, which flows through the graph.

``Try`` is approximated coarsely: every handler is reachable from the start
of the protected body (an exception may fire before any statement ran), and
``finally`` joins all outcomes.  That is the standard over-approximation for
dataflow soundness; it never hides a path.

:func:`dataflow` runs a forward worklist fixpoint with a caller-supplied
per-statement transfer and set-union join, then returns the state observed
*before* every statement — the per-statement environments the rule layer
consumes.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Tuple

#: Statements that terminate a block without a fall-through edge.
_JUMPS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


class Block:
    """One basic block: a statement list plus control edges."""

    __slots__ = ("bid", "stmts", "succs", "preds")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.stmts: List[ast.stmt] = []
        self.succs: List[int] = []
        self.preds: List[int] = []


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.entry = self._new()
        self.exit = self._new()

    def _new(self) -> int:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block.bid

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)


class _Builder:
    """Structured-statement walk producing blocks and edges."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self.current = self.cfg.entry
        # Stack of (break target, continue target) for enclosing loops.
        self._loops: List[Tuple[int, int]] = []

    # -- helpers -----------------------------------------------------------

    def _start(self) -> int:
        """Open a fresh block and fall through to it from the current one."""
        block = self.cfg._new()
        self.cfg._edge(self.current, block)
        self.current = block
        return block

    def _fresh(self) -> int:
        """Open a fresh block with no implicit fall-through edge."""
        block = self.cfg._new()
        self.current = block
        return block

    # -- statement dispatch ------------------------------------------------

    def body(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(node)
        elif isinstance(node, ast.Try):
            self._try(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self.cfg.blocks[self.current].stmts.append(node)
            self.body(node.body)
        elif isinstance(node, _JUMPS):
            self.cfg.blocks[self.current].stmts.append(node)
            if isinstance(node, ast.Break) and self._loops:
                self.cfg._edge(self.current, self._loops[-1][0])
            elif isinstance(node, ast.Continue) and self._loops:
                self.cfg._edge(self.current, self._loops[-1][1])
            else:
                self.cfg._edge(self.current, self.cfg.exit)
            self._fresh()  # anything after a jump is unreachable
        else:
            # Simple statement (incl. nested def/class headers: their bodies
            # are separate CFGs analyzed on their own).
            self.cfg.blocks[self.current].stmts.append(node)

    def _if(self, node: ast.If) -> None:
        self.cfg.blocks[self.current].stmts.append(node)
        head = self.current
        join = self.cfg._new()
        self._fresh()
        self.cfg._edge(head, self.current)
        self.body(node.body)
        self.cfg._edge(self.current, join)
        self._fresh()
        self.cfg._edge(head, self.current)
        self.body(node.orelse)
        self.cfg._edge(self.current, join)
        self.current = join

    def _loop(self, node: ast.stmt) -> None:
        header = self._start()
        self.cfg.blocks[header].stmts.append(node)
        after = self.cfg._new()
        self.cfg._edge(header, after)  # zero-iteration / test-false exit
        self._loops.append((after, header))
        self._fresh()
        self.cfg._edge(header, self.current)
        self.body(node.body)  # type: ignore[attr-defined]
        self.cfg._edge(self.current, header)  # back edge
        self._loops.pop()
        if getattr(node, "orelse", None):
            self._fresh()
            self.cfg._edge(header, self.current)
            self.body(node.orelse)  # type: ignore[attr-defined]
            self.cfg._edge(self.current, after)
        self.current = after

    def _try(self, node: ast.Try) -> None:
        before = self.current
        body_entry = self._start()
        self.body(node.body)
        body_exit = self.current
        join = self.cfg._new()
        if node.orelse:
            self._fresh()
            self.cfg._edge(body_exit, self.current)
            self.body(node.orelse)
            self.cfg._edge(self.current, join)
        else:
            self.cfg._edge(body_exit, join)
        for handler in node.handlers:
            self._fresh()
            # Coarse: the handler can fire before any protected statement.
            self.cfg._edge(before, self.current)
            self.cfg._edge(body_entry, self.current)
            self.cfg.blocks[self.current].stmts.append(handler)  # type: ignore[arg-type]
            self.body(handler.body)
            self.cfg._edge(self.current, join)
        self.current = join
        if node.finalbody:
            self.body(node.finalbody)


def build_cfg(body: List[ast.stmt]) -> CFG:
    """Build the CFG of a statement list (function or module body)."""
    builder = _Builder()
    builder.body(body)
    builder.cfg._edge(builder.current, builder.cfg.exit)
    return builder.cfg


def dataflow(
    cfg: CFG,
    initial: Dict[str, frozenset],
    transfer: Callable[[ast.stmt, Dict[str, frozenset]], Dict[str, frozenset]],
) -> Dict[int, Dict[str, frozenset]]:
    """Forward fixpoint; returns the environment before each statement.

    States are ``name -> token set`` maps joined by per-name union.  The
    returned map is keyed by ``id(stmt)`` (AST nodes are not hashable by
    value), covering every statement placed in a block, including compound
    headers.
    """
    states: Dict[int, Optional[Dict[str, frozenset]]] = {
        block.bid: None for block in cfg.blocks
    }
    states[cfg.entry] = dict(initial)
    work = [cfg.entry]
    while work:
        bid = work.pop()
        env = dict(states[bid] or {})
        for stmt in cfg.blocks[bid].stmts:
            env = transfer(stmt, env)
        for succ in cfg.blocks[bid].succs:
            old = states[succ]
            joined = _join(old, env)
            if old is None or joined != old:
                states[succ] = joined
                if succ not in work:
                    work.append(succ)
    at: Dict[int, Dict[str, frozenset]] = {}
    for block in cfg.blocks:
        env = dict(states[block.bid] or {})
        for stmt in block.stmts:
            at[id(stmt)] = env
            env = transfer(stmt, env)
    return at


def _join(
    old: Optional[Dict[str, frozenset]], new: Dict[str, frozenset]
) -> Dict[str, frozenset]:
    if old is None:
        return dict(new)
    joined = dict(old)
    for name, tokens in new.items():
        joined[name] = joined.get(name, frozenset()) | tokens
    return joined
