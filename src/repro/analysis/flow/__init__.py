"""SPMD flow analysis: CFG + call-graph dataflow over the rank-taint lattice.

Where :mod:`repro.analysis.lint` pattern-matches single statements, this
package computes *dataflow*: a control-flow graph per function
(:mod:`.cfg`), a whole-program call graph (:mod:`.callgraph`), a token-set
taint lattice with interprocedural summaries (:mod:`.taint`), and the
SPMD1xx rule family evaluated over the results (:mod:`.rules`), all driven
by the fixpoint engine in :mod:`.engine`.

| Code    | Hazard                                                          |
|---------|-----------------------------------------------------------------|
| SPMD101 | collective under rank-divergent control flow (aliases, early    |
|         | exits, and cross-function divergence included)                  |
| SPMD102 | rank-dependent branch arms with different collective sequences  |
| SPMD103 | nondeterminism source reaching a wire or report path            |
| SPMD104 | ghost/copy read after owner mutation with no synchronize on a   |
|         | path                                                            |
| SPMD105 | rank-tainted value escaping into shared module/class state      |

Entry points: :func:`analyze_source` (one string),
:func:`analyze_paths` (trees), and ``python -m repro analyze``.
"""

from .engine import (
    FlowAnalyzer,
    SCHEMA,
    analyze_paths,
    analyze_source,
    format_json,
    format_sarif,
    format_text,
    load_baseline,
    main,
    split_baselined,
    write_baseline,
)
from .rules import HINTS

__all__ = [
    "FlowAnalyzer",
    "SCHEMA",
    "HINTS",
    "analyze_paths",
    "analyze_source",
    "format_json",
    "format_sarif",
    "format_text",
    "load_baseline",
    "main",
    "split_baselined",
    "write_baseline",
]
