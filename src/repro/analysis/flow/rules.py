"""The SPMD1xx rule family: flow-analysis upgrades of the syntactic lint.

| Code    | Hazard                                                            |
|---------|-------------------------------------------------------------------|
| SPMD101 | collective reached under rank-divergent control flow (dataflow    |
|         | upgrade of SPMD001: aliases, early exits, cross-function)         |
| SPMD102 | branch-inconsistent collective *sequences* (static twin of the    |
|         | runtime collective-order ledger)                                  |
| SPMD103 | nondeterminism source flowing into a wire or report path          |
| SPMD104 | stale-ghost read: owner mutation, then a ghost/copy read with no  |
|         | synchronize/accumulate on some path                               |
| SPMD105 | rank-tainted value escaping into module/class state shared across |
|         | rank threads                                                      |

Each function is scanned once per fixpoint round by :class:`FunctionScan`,
a structured walk over the body that pairs ``if``/``else`` arms (the CFG
cannot — arm pairing is a tree property), compares their collective
sequences, and consults the per-statement taint environments computed by
:mod:`repro.analysis.flow.taint` over the CFG.  Scans double as summary
producers: the collective sequence and divergence-prone parameters they
derive feed the next fixpoint round, which is how a helper's collectives
become visible at its call sites in another file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rules.aliasing import MUTATING_METHODS
from ..rules.base import Finding
from ..rules.communication import POSTING_CALLS
from .callgraph import FunctionInfo, Program
from .taint import (
    EMPTY,
    Evaluator,
    RANK,
    Summary,
    SYNC_CALLS,
    Tokens,
    _receiver_name,
)

#: Methods that read ghost/copy values of a distributed field.
GHOST_READS: Set[str] = {
    "ghost_value",
    "ghost_values",
    "get_ghost",
    "copy_value",
    "copy_values",
    "copies",
    "ghosts",
    "ghost_entities",
    "ghost_items",
    "max_copy_disagreement",
}

#: Wire sinks beyond posting: exchange payload arguments.
WIRE_SINKS: Set[str] = POSTING_CALLS | {
    "exchange",
    "neighbor_exchange",
    "dense_exchange",
}

#: Report sinks: serialization calls and report-shaped function names.
REPORT_CALL_SINKS: Set[str] = {"dumps", "dump"}
_REPORT_FUNC_RE = re.compile(r"report|to_dict|to_json|summary", re.IGNORECASE)

HINTS: Dict[str, str] = {
    "SPMD101": (
        "make every rank reach the collective (hoist it, or split the "
        "communicator for the subset that participates)"
    ),
    "SPMD102": (
        "make both arms perform the same collective sequence, or move the "
        "collectives out of the rank-dependent branch"
    ),
    "SPMD103": (
        "derive wire/report payloads from deterministic inputs (seeded rng, "
        "sorted(...) iteration, logical step counters instead of wall time)"
    ),
    "SPMD104": (
        "call synchronize()/accumulate() after mutating owned values and "
        "before reading ghost copies on every path"
    ),
    "SPMD105": (
        "keep rank-derived values in per-rank locals; module/class state is "
        "shared by every rank thread in the process"
    ),
}


def _nd_kinds(tokens: Tokens) -> List[str]:
    return sorted(t[3:] for t in tokens if t.startswith("ND:"))


def _dirty_lines(tokens: Tokens) -> List[int]:
    return sorted(int(t[6:]) for t in tokens if t.startswith("DIRTY:"))


@dataclass
class _Arm:
    """Summary of one statement region (an if-arm, a loop body, ...)."""

    #: Collective sequence markers, in execution order.  Real ops are bare
    #: names; data-dependent subregions contribute ``?``-markers so outer
    #: comparisons stay conservative.
    seq: List[str] = field(default_factory=list)
    #: Whether every path through the region exits it (return/raise/
    #: break/continue) — used to detect rank-divergent early exits.
    terminated: bool = False


@dataclass
class ScanResult:
    seq: Tuple[str, ...]
    divergence_params: frozenset
    findings: List[Finding]


class FunctionScan:
    """One structured pass over one function."""

    def __init__(
        self,
        info: FunctionInfo,
        program: Program,
        summaries: Dict[int, Summary],
        env_at: Dict[int, Dict[str, Tokens]],
        report: bool,
    ) -> None:
        self.info = info
        self.program = program
        self.summaries = summaries
        self.env_at = env_at
        self.report = report
        self.evaluator = Evaluator(program, summaries, info)
        self.findings: List[Finding] = []
        self.divergence_params: Set[int] = set()
        #: Line of the rank-divergent early exit we are downstream of.
        self._diverged_at: Optional[int] = None
        self._local_names = self._collect_locals()
        self._global_decls = self._collect_globals()

    # -- bookkeeping -------------------------------------------------------

    def _collect_locals(self) -> Set[str]:
        names: Set[str] = set(self.info.param_names())
        for sub in ast.walk(self.info.node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    sub.targets
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for name in ast.walk(sub.target):
                    if isinstance(name, ast.Name):
                        names.add(name.id)
        return names

    def _collect_globals(self) -> Set[str]:
        return {
            name
            for sub in ast.walk(self.info.node)
            if isinstance(sub, ast.Global)
            for name in sub.names
        }

    def _env(self, stmt: ast.stmt) -> Dict[str, Tokens]:
        return self.env_at.get(id(stmt), {})

    def _emit(
        self, code: str, node: ast.AST, message: str
    ) -> None:
        if not self.report:
            return
        self.findings.append(
            Finding(
                path=self.info.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
                hint=HINTS[code],
            )
        )

    # -- collective sites --------------------------------------------------

    def _collective_sites(
        self, stmt: ast.stmt, env: Dict[str, Tokens]
    ) -> List[Tuple[ast.Call, Tuple[str, ...], str]]:
        """Every collective-performing call in one statement's expressions.

        Returns ``(call node, op sequence, label)`` triples: a direct or
        aliased collective contributes its single op; a call into an
        analyzed function contributes that function's summarized sequence.
        """
        sites: List[Tuple[ast.Call, Tuple[str, ...], str]] = []
        for call in ast.walk(stmt):
            if not isinstance(call, ast.Call):
                continue
            op = self.evaluator._collective_op(call, env)
            if op is not None:
                sites.append((call, (op,), op))
                continue
            for target in self.program.resolve_call(call):
                summary = self.summaries.get(id(target.node))
                if summary is not None and summary.seq:
                    sites.append(
                        (call, summary.seq, f"{target.qualname}()")
                    )
                    break
        return sites

    # -- the walk ----------------------------------------------------------

    def run(self) -> ScanResult:
        arm = self._walk(list(self.info.node.body))  # type: ignore[attr-defined]
        return ScanResult(
            seq=tuple(arm.seq),
            divergence_params=frozenset(self.divergence_params),
            findings=self.findings,
        )

    def _walk(self, stmts: Sequence[ast.stmt]) -> _Arm:
        arm = _Arm()
        for stmt in stmts:
            if arm.terminated:
                break  # unreachable tail
            self._stmt(stmt, arm)
        return arm

    def _stmt(self, stmt: ast.stmt, arm: _Arm) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested defs run elsewhere; defining one is no call
        env = self._env(stmt)
        if self._diverged_at is not None:
            # Downstream of a rank-dependent early exit: only a rank subset
            # still runs, so *any* collective here is a mismatch.
            for call, _ops, label in self._collective_sites(stmt, env):
                self._emit(
                    "SPMD101",
                    call,
                    f"collective '{label}' is unreachable for ranks that "
                    f"took the rank-dependent early exit at line "
                    f"{self._diverged_at}; the remaining ranks block forever",
                )
        if isinstance(stmt, ast.If):
            self._if(stmt, arm, env)
            return
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(stmt, arm, env)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._simple_checks_expr(item.context_expr, env)
            inner = self._walk(stmt.body)
            arm.seq.extend(inner.seq)
            arm.terminated = inner.terminated
            return
        if isinstance(stmt, ast.Try):
            self._try(stmt, arm)
            return
        # Simple statement.
        self._simple_checks_expr(stmt, env)
        self._check_shared_state(stmt, env)
        for _call, ops, _label in self._collective_sites(stmt, env):
            arm.seq.extend(ops)
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
            arm.terminated = True
            if isinstance(stmt, ast.Return):
                self._check_report_return(stmt, env)

    def _if(self, stmt: ast.If, arm: _Arm, env: Dict[str, Tokens]) -> None:
        test_tokens = self.evaluator.tokens(stmt.test, env)
        self._simple_checks_expr(stmt.test, env)
        body = self._walk(stmt.body)
        orelse = self._walk(stmt.orelse)
        rank_test = RANK in test_tokens
        params = sorted(
            int(t[2:]) for t in test_tokens if t.startswith("P:")
        )
        divergent_arms = body.seq != orelse.seq or (
            body.terminated != orelse.terminated
        )
        if rank_test:
            if body.seq != orelse.seq:
                if not body.seq or not orelse.seq:
                    for call, _ops, label in self._arm_sites(
                        stmt.body if body.seq else stmt.orelse
                    ):
                        self._emit(
                            "SPMD101",
                            call,
                            f"collective '{label}' is reached only by ranks "
                            f"on one side of the rank-dependent branch at "
                            f"line {stmt.lineno}; the other ranks never "
                            f"enter it and the job deadlocks or cross-"
                            f"matches",
                        )
                else:
                    self._emit(
                        "SPMD102",
                        stmt,
                        "rank-dependent branch arms execute different "
                        f"collective sequences ({self._fmt(body.seq)} vs "
                        f"{self._fmt(orelse.seq)}); ranks taking different "
                        "arms cross-match collectives",
                    )
            if body.terminated != orelse.terminated:
                # One side leaves the function/loop: everything after this
                # branch runs on a rank-dependent subset.
                if self._diverged_at is None:
                    self._diverged_at = stmt.lineno
        elif params and divergent_arms and (body.seq or orelse.seq):
            self.divergence_params.update(params)
        # Sequence contribution of the whole if.
        if body.seq == orelse.seq:
            arm.seq.extend(body.seq)
        elif rank_test:
            arm.seq.extend(body.seq if body.seq else orelse.seq)
        else:
            arm.seq.append(f"?if@{stmt.lineno}")
        arm.terminated = body.terminated and orelse.terminated

    def _arm_sites(self, stmts: Sequence[ast.stmt]):
        sites = []
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            sites.extend(self._collective_sites(stmt, self._env(stmt)))
        return sites

    def _loop(self, stmt, arm: _Arm, env: Dict[str, Tokens]) -> None:
        if isinstance(stmt, ast.While):
            cond_tokens = self.evaluator.tokens(stmt.test, env)
            self._simple_checks_expr(stmt.test, env)
        else:
            cond_tokens = self.evaluator.tokens(stmt.iter, env)
            self._simple_checks_expr(stmt.iter, env)
        body = self._walk(stmt.body)
        if getattr(stmt, "orelse", None):
            tail = self._walk(stmt.orelse)
            body.seq.extend(tail.seq)
        if RANK in cond_tokens and body.seq:
            for call, ops, label in self._arm_sites(stmt.body):
                self._emit(
                    "SPMD101",
                    call,
                    f"collective '{label}' runs inside a loop whose "
                    f"{'condition' if isinstance(stmt, ast.While) else 'iteration space'} "
                    f"is rank-dependent (line {stmt.lineno}); ranks execute "
                    f"different collective counts",
                )
        if body.seq:
            arm.seq.append(f"*loop@{stmt.lineno}({','.join(body.seq)})")

    def _try(self, stmt: ast.Try, arm: _Arm) -> None:
        body = self._walk(stmt.body)
        arm.seq.extend(body.seq)
        for handler in stmt.handlers:
            caught = self._walk(handler.body)
            if caught.seq:
                arm.seq.append(f"?except@{handler.lineno}")
        if stmt.orelse:
            arm.seq.extend(self._walk(stmt.orelse).seq)
        if stmt.finalbody:
            final = self._walk(stmt.finalbody)
            arm.seq.extend(final.seq)
            arm.terminated = body.terminated or final.terminated
        else:
            arm.terminated = body.terminated

    @staticmethod
    def _fmt(seq: Sequence[str]) -> str:
        return "[" + " -> ".join(seq) + "]" if seq else "[none]"

    # -- per-statement rule checks ----------------------------------------

    def _simple_checks_expr(
        self, node: ast.AST, env: Dict[str, Tokens]
    ) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            self._check_nondet_sink(call, env)
            self._check_ghost_read(call, env)
            self._check_divergent_callee(call, env)

    # SPMD103 ---------------------------------------------------------------

    def _check_nondet_sink(
        self, call: ast.Call, env: Dict[str, Tokens]
    ) -> None:
        func = call.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if name in WIRE_SINKS:
            sink = "wire"
        elif name in REPORT_CALL_SINKS:
            sink = "report"
        else:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            tokens = self.evaluator.tokens(arg, env)
            kinds = _nd_kinds(tokens)
            if kinds:
                self._emit(
                    "SPMD103",
                    arg,
                    f"nondeterministic value ({', '.join(kinds)}) flows "
                    f"into {sink} sink '{name}'; runs will not be "
                    f"byte-identical",
                )

    def _check_report_return(
        self, stmt: ast.Return, env: Dict[str, Tokens]
    ) -> None:
        if stmt.value is None:
            return
        if not _REPORT_FUNC_RE.search(self.info.name):
            return
        kinds = _nd_kinds(self.evaluator.tokens(stmt.value, env))
        if kinds:
            self._emit(
                "SPMD103",
                stmt,
                f"report-path function '{self.info.qualname}' returns a "
                f"nondeterministic value ({', '.join(kinds)})",
            )

    # SPMD104 ---------------------------------------------------------------

    def _check_ghost_read(
        self, call: ast.Call, env: Dict[str, Tokens]
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in GHOST_READS:
            return
        receiver = _receiver_name(func)
        if receiver is None:
            return
        lines = _dirty_lines(env.get(receiver, EMPTY))
        if lines:
            self._emit(
                "SPMD104",
                call,
                f"ghost/copy read '.{func.attr}()' on '{receiver}' after "
                f"owner mutation at line {lines[0]} with no intervening "
                f"synchronize/accumulate on some path; ghost copies are "
                f"stale",
            )

    # SPMD101 interprocedural ----------------------------------------------

    def _check_divergent_callee(
        self, call: ast.Call, env: Dict[str, Tokens]
    ) -> None:
        for target in self.program.resolve_call(call):
            summary = self.summaries.get(id(target.node))
            if summary is None or not summary.divergence_params:
                continue
            actuals = self.evaluator.call_arg_tokens(target, call, env)
            params = target.param_names()
            for index in sorted(summary.divergence_params):
                if index < len(actuals) and RANK in actuals[index]:
                    self._emit(
                        "SPMD101",
                        call,
                        f"rank-derived value passed as parameter "
                        f"'{params[index]}' of '{target.qualname}', which "
                        f"guards collectives with it; the collective "
                        f"sequence diverges across ranks",
                    )

    # SPMD105 ---------------------------------------------------------------

    def _module_global_line(self, name: str) -> Optional[int]:
        if name in self._local_names and name not in self._global_decls:
            return None
        return self.program.module_globals.get(self.info.path, {}).get(name)

    def _class_shared_attr(self, target: ast.AST) -> Optional[str]:
        """``Cls.attr`` / ``self.<class-mutable>`` shared-state stores."""
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return None
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        if not isinstance(base, ast.Attribute):
            return None
        value = base.value
        if isinstance(value, ast.Name) and value.id in self.program.classes:
            return f"{value.id}.{base.attr}"
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "__class__"
        ):
            return f"<class>.{base.attr}"
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "type"
        ):
            return f"<class>.{base.attr}"
        cls = self.evaluator.cls
        if (
            cls is not None
            and isinstance(value, ast.Name)
            and value.id == "self"
            and base.attr in cls.mutable_attrs
        ):
            return f"{cls.name}.{base.attr} (class-level container)"
        return None

    def _check_shared_state(
        self, stmt: ast.stmt, env: Dict[str, Tokens]
    ) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            value_tokens = (
                self.evaluator.tokens(stmt.value, env)
                if stmt.value is not None
                else EMPTY
            )
            if RANK not in value_tokens:
                value_tokens |= self._subscript_key_tokens(targets, env)
            if RANK not in value_tokens:
                return
            for target in targets:
                described = self._store_target_description(target)
                if described is not None:
                    self._emit(
                        "SPMD105",
                        stmt,
                        f"rank-tainted value stored into {described}, "
                        f"which is shared across all rank threads",
                    )
        else:
            for call in ast.walk(stmt):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if (
                    not isinstance(func, ast.Attribute)
                    or func.attr not in MUTATING_METHODS
                ):
                    continue
                args_tainted = any(
                    RANK in self.evaluator.tokens(arg, env)
                    for arg in list(call.args)
                    + [kw.value for kw in call.keywords]
                )
                if not args_tainted:
                    continue
                described = self._mutated_shared(func.value)
                if described is not None:
                    self._emit(
                        "SPMD105",
                        call,
                        f"rank-tainted value inserted into {described} via "
                        f".{func.attr}(); that state is shared across all "
                        f"rank threads",
                    )

    def _subscript_key_tokens(
        self, targets: Sequence[ast.AST], env: Dict[str, Tokens]
    ) -> Tokens:
        out: Tokens = EMPTY
        for target in targets:
            if isinstance(target, ast.Subscript):
                out |= self.evaluator.tokens(target.slice, env)
        return out

    def _store_target_description(
        self, target: ast.AST
    ) -> Optional[str]:
        if isinstance(target, ast.Name):
            line = self._module_global_line(target.id)
            if line is not None and target.id in self._global_decls:
                return f"module global '{target.id}' (bound at line {line})"
            return None
        if isinstance(target, ast.Subscript):
            base = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Name):
                line = self._module_global_line(base.id)
                if line is not None:
                    return (
                        f"module-level container '{base.id}' "
                        f"(bound at line {line})"
                    )
        return self._class_shared_attr(target)

    def _mutated_shared(self, receiver: ast.AST) -> Optional[str]:
        if isinstance(receiver, ast.Name):
            line = self._module_global_line(receiver.id)
            if line is not None:
                return (
                    f"module-level container '{receiver.id}' "
                    f"(bound at line {line})"
                )
            return None
        fake_store = ast.Subscript(value=receiver, slice=ast.Constant(0))
        return self._class_shared_attr(fake_store)
