"""SPMD lint engine: parse once, run every rule, honor ``# noqa``.

Entry points:

* :func:`lint_source` — lint one source string (used by the tests' buggy
  fixtures).
* :func:`run_paths` — lint files and directory trees.
* ``python -m repro lint [paths...] [--format=json]`` — the CLI wrapper in
  :mod:`repro.cli`; with no paths it lints the installed ``repro`` package,
  which is ``src/repro`` in a checkout.

Suppression policy lives in :mod:`repro.analysis.suppress`, shared with the
flow analyzer: ``# noqa`` on the offending line (blanket) or
``# noqa: SPMD003 — justification`` per code, ``# repro: noqa`` in the file
header for whole-file opt-out.  A code-listing suppression without a
justification is itself reported as SPMD007.
"""

from __future__ import annotations

import ast
import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Type

from . import suppress
from .rules import ALL_RULES, Finding, Rule


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint one source string; returns findings sorted by location."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="SPMD000",
                message=f"syntax error: {exc.msg}",
                hint="fix the syntax error so the file can be analyzed",
            )
        ]
    findings: List[Finding] = []
    for rule_cls in rules if rules is not None else ALL_RULES:
        visitor = rule_cls(path)
        visitor.visit(tree)
        findings.extend(visitor.findings)
    findings = suppress.apply(findings, source, path)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(
    path: Path, rules: Optional[Sequence[Type[Rule]]] = None
) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rules=rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files and directory trees into a sorted stream of ``.py`` files."""
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise FileNotFoundError(f"lint target does not exist: {path}")


def run_paths(
    paths: Iterable[Path], rules: Optional[Sequence[Type[Rule]]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; findings in path order."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules=rules))
    return findings


def format_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus hint and summary."""
    lines = [f"{f.format()}\n    hint: {f.hint}" for f in findings]
    lines.append(
        f"{len(findings)} finding(s)" if findings else "clean: 0 findings"
    )
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (list of finding objects)."""
    return json.dumps([asdict(f) for f in findings], indent=2)


def default_target() -> Path:
    """With no explicit paths, lint the installed ``repro`` package tree."""
    return Path(__file__).resolve().parent.parent


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry (``python -m repro.analysis.lint``); 1 if findings."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro lint", description="SPMD correctness lint"
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)
    paths = [Path(p) for p in args.paths] or [default_target()]
    findings = run_paths(paths)
    formatter = format_json if args.format == "json" else format_text
    print(formatter(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
