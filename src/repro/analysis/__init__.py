"""SPMD correctness tooling: AST lint, flow analysis, runtime sanitizers.

The paper's infrastructure leans on ``apf::verify``-style invariant checking
after every distributed operation.  This package is the analogous correctness
net for the *communication* layer of the reproduction: a custom AST lint that
knows the hazard classes of thread-based SPMD programs (collective mismatch,
unordered message posting, on-node payload aliasing), an interprocedural
rank-taint dataflow analysis for the hazards pattern matching cannot see
(aliased collectives, divergent early exits, cross-function divergence,
stale ghost reads, nondeterministic wire payloads), and runtime sanitizers
that catch the same classes dynamically while the simulated runtime executes.

* :mod:`repro.analysis.lint` — the lint engine (``python -m repro lint``).
* :mod:`repro.analysis.rules` — the SPMD001..SPMD006 rule visitors.
* :mod:`repro.analysis.flow` — CFG + call-graph dataflow, the SPMD101..
  SPMD105 rules, and the baseline machinery (``python -m repro analyze``).
* :mod:`repro.analysis.suppress` — the shared ``# noqa`` policy (justified
  suppressions, ``# repro: noqa`` file opt-out, SPMD007).
* :mod:`repro.analysis.sanitizers` — freeze proxies and sanitizer errors used
  by :mod:`repro.parallel` when sanitize mode is on.
"""

from .lint import Finding, format_json, format_text, lint_source, run_paths
from .sanitizers import (
    CollectiveMismatchError,
    DeadlockError,
    FrozenDict,
    FrozenList,
    FrozenSet,
    PayloadAliasError,
    SanitizerError,
    freeze,
    sanitize_default,
)

__all__ = [
    "CollectiveMismatchError",
    "DeadlockError",
    "Finding",
    "FrozenDict",
    "FrozenList",
    "FrozenSet",
    "PayloadAliasError",
    "SanitizerError",
    "format_json",
    "format_text",
    "freeze",
    "lint_source",
    "run_paths",
    "sanitize_default",
]
