"""Rule registry for the SPMD lint.

| Code    | Rule                        | Hazard                                |
|---------|-----------------------------|---------------------------------------|
| SPMD001 | CollectiveInRankBranch      | collective mismatch / deadlock        |
| SPMD002 | UnorderedPosting            | nondeterministic wire order           |
| SPMD003 | ReceivedPayloadMutation     | on-node payload aliasing corruption   |
| SPMD004 | MutableDefaultArg           | cross-rank shared mutable default     |
| SPMD005 | BareExcept                  | swallowed abort, job hangs            |
| SPMD006 | ImplicitOptionalAnnotation  | lying annotation (`x: bool = None`)   |
| SPMD007 | (from repro.analysis.suppress) | unjustified ``# noqa: CODE``       |

The SPMD101..SPMD105 *flow* rules (interprocedural rank-taint dataflow)
live in :mod:`repro.analysis.flow` and run under ``python -m repro
analyze``.  Suppress a finding with ``# noqa: SPMD00N — justification`` on
the line; the justification is required (see
:mod:`repro.analysis.suppress`).
"""

from .aliasing import ReceivedPayloadMutation
from .base import Finding, Rule
from .communication import CollectiveInRankBranch, UnorderedPosting
from .hygiene import BareExcept, ImplicitOptionalAnnotation, MutableDefaultArg

#: All rules, in code order; the engine runs each over every file.
ALL_RULES = [
    CollectiveInRankBranch,
    UnorderedPosting,
    ReceivedPayloadMutation,
    MutableDefaultArg,
    BareExcept,
    ImplicitOptionalAnnotation,
]

__all__ = [
    "ALL_RULES",
    "BareExcept",
    "CollectiveInRankBranch",
    "Finding",
    "ImplicitOptionalAnnotation",
    "MutableDefaultArg",
    "ReceivedPayloadMutation",
    "Rule",
    "UnorderedPosting",
]
