"""Communication-structure rules: collective mismatch and posting order.

These are the two hazards an SPMD *simulator* shares with real MPI codes:

* a collective (or BSP ``exchange``) reached by only a subset of ranks
  deadlocks or cross-matches the whole job — the classic collective-mismatch
  bug MPI debuggers (MUST, MPI_Check) exist to find;
* message posting driven by iteration over an unordered container makes the
  wire order vary run to run, which breaks the deterministic-replay property
  the BSP network promises and hides real races behind flaky tests.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .base import Rule, call_name

#: User-facing collective entry points of Comm / Network / neighbor exchange.
COLLECTIVE_CALLS: Set[str] = {
    "barrier",
    "bcast",
    "scatter",
    "gather",
    "allgather",
    "reduce",
    "allreduce",
    "alltoall",
    "scan",
    "exscan",
    "split",
    "dup",
    "node_comm",
    "leader_comm",
    "exchange",
    "neighbor_exchange",
    "dense_exchange",
}

#: Calls that enqueue or transmit a message.
POSTING_CALLS: Set[str] = {
    "post",
    "send",
    "isend",
    "sendrecv",
    "transmit",
    "_csend",
}

#: Calls and set-operations whose result iterates in hash order.
UNORDERED_PRODUCERS: Set[str] = {
    "set",
    "frozenset",
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}


def _mentions_rank(test: ast.AST) -> bool:
    """Whether a branch condition depends on the calling rank's identity."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Name):
            if sub.id == "rank" or sub.id.endswith("_rank") or sub.id == "vrank":
                return True
        elif isinstance(sub, ast.Attribute):
            if sub.attr == "rank" or sub.attr.endswith("_rank"):
                return True
        elif isinstance(sub, ast.Call):
            if call_name(sub) in ("Get_rank", "world_rank_of"):
                return True
    return False


def _collective_value(value: ast.AST) -> bool:
    """``<expr>.bcast`` (unCalled) is a bound collective method."""
    return (
        isinstance(value, ast.Attribute) and value.attr in COLLECTIVE_CALLS
    )


class CollectiveInRankBranch(Rule):
    """SPMD001: collective/exchange call inside a rank-dependent branch.

    Beyond direct calls (``comm.barrier()``), two aliasing forms count as
    collective calls — both were precision gaps of the original rule:

    * a local alias of a bound collective: ``b = world.bcast; b(x)``;
    * a collective stored on the instance anywhere in the class
      (``self._sync = world.barrier`` in ``__init__``), then called as
      ``self._sync()`` from any method.
    """

    code = "SPMD001"
    hint = (
        "hoist the collective out of the branch so every rank calls it, or "
        "split the communicator first"
    )

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._branch_lines: List[int] = []
        self._aliases: List[Set[str]] = [set()]
        self._self_aliases: List[Set[str]] = [set()]

    def _visit_branch(self, node: ast.AST, test: ast.AST) -> None:
        if _mentions_rank(test):
            self._branch_lines.append(node.lineno)
            self.generic_visit(node)
            self._branch_lines.pop()
        else:
            self.generic_visit(node)

    def visit_If(self, node: ast.If) -> None:
        self._visit_branch(node, node.test)

    def visit_While(self, node: ast.While) -> None:
        self._visit_branch(node, node.test)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Class pre-pass: every `self.X = <expr>.collective` in any method
        # makes `self.X(...)` a collective call throughout the class.
        attrs: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and _collective_value(sub.value):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        self._self_aliases.append(attrs)
        self.generic_visit(node)
        self._self_aliases.pop()

    def _visit_function(self, node: ast.AST) -> None:
        # A nested function defined inside a rank branch is not necessarily
        # *called* there; analyze its body with a fresh branch stack.  The
        # alias pre-pass is flow-insensitive within the function, the same
        # precision class as SPMD002's set-name pre-pass.
        aliases: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and _collective_value(sub.value):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        saved, self._branch_lines = self._branch_lines, []
        self._aliases.append(aliases)
        self.generic_visit(node)
        self._aliases.pop()
        self._branch_lines = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node)

    def _collective_name(self, node: ast.Call) -> Optional[str]:
        """The collective a call invokes, directly or through an alias."""
        name = call_name(node)
        if name in COLLECTIVE_CALLS:
            return name
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._aliases[-1]:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in self._self_aliases[-1]
        ):
            return f"self.{func.attr}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        name = self._collective_name(node)
        if name is not None and self._branch_lines:
            self.report(
                node,
                f"collective '{name}' called inside a rank-dependent branch "
                f"(line {self._branch_lines[-1]}); ranks that skip it will "
                f"deadlock or cross-match the collective",
            )
        self.generic_visit(node)


def _is_unordered_expr(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and call_name(expr) in UNORDERED_PRODUCERS:
        return True
    return False


class UnorderedPosting(Rule):
    """SPMD002: message posting driven by iteration over an unordered set."""

    code = "SPMD002"
    hint = "iterate sorted(...) so posting order is deterministic across runs"

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._unordered_names: Set[str] = set()

    def _visit_function(self, node: ast.AST) -> None:
        saved, self._unordered_names = self._unordered_names, set()
        # Pre-pass: names bound to set-valued expressions anywhere in this
        # function body (flow-insensitive; precision is traded for a visitor
        # that never misses the common `parts = set(...)` pattern).
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and _is_unordered_expr(sub.value):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        self._unordered_names.add(target.id)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                if _is_unordered_expr(sub.value) and isinstance(
                    sub.target, ast.Name
                ):
                    self._unordered_names.add(sub.target.id)
        self.generic_visit(node)
        self._unordered_names = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_For(self, node: ast.For) -> None:
        unordered = _is_unordered_expr(node.iter) or (
            isinstance(node.iter, ast.Name)
            and node.iter.id in self._unordered_names
        )
        if unordered:
            for sub in ast.walk(ast.Module(body=node.body, type_ignores=[])):
                if isinstance(sub, ast.Call) and call_name(sub) in POSTING_CALLS:
                    self.report(
                        sub,
                        f"message posting '{call_name(sub)}' inside a loop "
                        f"over an unordered set (line {node.lineno}); wire "
                        f"order will vary between runs",
                    )
        self.generic_visit(node)
