"""Shared machinery for lint rules: the finding record and the rule base.

Every rule is an :class:`ast.NodeVisitor` subclass with a stable ``code``
(``SPMD001``...), a one-line ``hint`` telling the author how to fix the
hazard, and a ``findings`` list the engine collects after visiting.  Rules
never read the file system — the engine parses once and hands each rule the
same tree, so a lint run is one parse plus N cheap traversals per file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class Finding:
    """One lint violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Rule(ast.NodeVisitor):
    """Base class: one instance per (rule, file) pair."""

    #: Stable rule identifier, e.g. ``SPMD001``; the code noqa comments list.
    code: str = "SPMD000"
    #: Default finding message (rules may pass a specific one to report()).
    message: str = ""
    #: How to fix the hazard; appended to the CLI output.
    hint: str = ""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: Optional[str] = None) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=self.code,
                message=message if message is not None else self.message,
                hint=self.hint,
            )
        )


def call_name(node: ast.Call) -> Optional[str]:
    """The attribute or bare name a call targets (``x.post(...)`` -> ``post``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
