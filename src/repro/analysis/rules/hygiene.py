"""General rank-program hygiene rules.

Three classics that are disproportionately dangerous in SPMD code:

* a **mutable default argument** is shared across every rank thread of the
  process — in a normal script it is a wart, here it is a data race;
* a **bare except** swallows :class:`~repro.parallel.comm.CommAbortedError`
  and the abort wake-up, turning a clean job abort into a hang;
* an **implicit-Optional annotation** (``x: bool = None``) lies to readers
  and type checkers about whether ``None`` flows through collective results.
"""

from __future__ import annotations

import ast
from typing import Optional

from .base import Rule

#: Annotations considered concrete (a ``= None`` default contradicts them).
_CONCRETE_NAMES = {
    "bool",
    "int",
    "float",
    "complex",
    "str",
    "bytes",
    "list",
    "dict",
    "set",
    "tuple",
    "List",
    "Dict",
    "Set",
    "Tuple",
    "Sequence",
    "Mapping",
    "Callable",
    "Iterable",
    "Iterator",
    "FrozenSet",
}


def _annotation_head(annotation: ast.AST) -> Optional[str]:
    """Outermost name of an annotation (``Callable[..., X]`` -> ``Callable``)."""
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


def _is_none(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class MutableDefaultArg(Rule):
    """SPMD004: mutable default argument (shared across rank threads)."""

    code = "SPMD004"
    hint = "default to None and create the container inside the function body"

    def _check(self, node) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        pairs = list(zip(positional[len(positional) - len(args.defaults):],
                         args.defaults))
        pairs += [
            (a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
            if d is not None
        ]
        for arg, default in pairs:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self.report(
                    default,
                    f"mutable default for argument '{arg.arg}' of "
                    f"'{node.name}' is shared across all rank threads",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)


class BareExcept(Rule):
    """SPMD005: bare ``except:`` in a rank program."""

    code = "SPMD005"
    hint = (
        "catch a specific exception; a bare except swallows CommAbortedError "
        "and turns a clean SPMD abort into a hang"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare 'except:' catches abort/interrupt signals")
        self.generic_visit(node)


class ImplicitOptionalAnnotation(Rule):
    """SPMD006: concrete annotation with a ``None`` default."""

    code = "SPMD006"
    hint = "annotate as Optional[...] (PEP 484 forbids implicit Optional)"

    def _check(self, node) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        pairs = list(zip(positional[len(positional) - len(args.defaults):],
                         args.defaults))
        pairs += list(zip(args.kwonlyargs, args.kw_defaults))
        for arg, default in pairs:
            if default is None or arg.annotation is None:
                continue
            if not _is_none(default):
                continue
            head = _annotation_head(arg.annotation)
            if head in _CONCRETE_NAMES:
                self.report(
                    arg,
                    f"argument '{arg.arg}' of '{node.name}' is annotated "
                    f"'{head}' but defaults to None",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)
