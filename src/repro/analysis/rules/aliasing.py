"""On-node aliasing rule: mutation of received payloads.

The simulated network passes on-node messages **by reference**
(:mod:`repro.parallel.network`), mirroring the implicit shared-memory
representation of the paper's two-level design.  A receiver that mutates a
payload therefore silently corrupts the *sender's* data structure — the
hazard real MPI cannot even express.  SPMD003 taints names bound from
``recv``-like calls (and loop variables drawn from ``exchange()`` inboxes)
and flags in-place mutation of a tainted name unless it was re-bound first
(the defensive copy: ``payload = list(payload)``).

The analysis is function-local and flow-approximate: statements are scanned
in source order, any re-assignment un-taints.  That is deliberately the same
precision class as classic lints (pyflakes), not a points-to analysis.
"""

from __future__ import annotations

import ast
from typing import Set

from .base import Rule, call_name

#: Calls whose return value is a message payload (possibly by-reference).
RECEIVE_CALLS: Set[str] = {
    "recv",
    "irecv",
    "sendrecv",
    "wait",
    "_crecv",
    "bcast",
    "gather",
    "allgather",
    "alltoall",
    "scatter",
    "scan",
    "exscan",
}

#: Calls returning the whole inbox map of a superstep.
EXCHANGE_CALLS: Set[str] = {"exchange", "neighbor_exchange", "dense_exchange"}

#: In-place mutators of list/dict/set/ndarray payloads.
MUTATING_METHODS: Set[str] = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "sort",
    "reverse",
    "update",
    "setdefault",
    "add",
    "discard",
    "difference_update",
    "intersection_update",
    "symmetric_difference_update",
    "fill",
    "resize",
    "put",
}

#: Re-binding calls that count as a defensive copy and clear the taint.
COPY_CALLS: Set[str] = {
    "list",
    "dict",
    "set",
    "tuple",
    "sorted",
    "copy",
    "deepcopy",
    "array",
}


def _target_names(target: ast.AST):
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            yield sub.id


class ReceivedPayloadMutation(Rule):
    """SPMD003: in-place mutation of a received payload without a copy."""

    code = "SPMD003"
    hint = (
        "copy before mutating (payload = list(payload) / dict(payload) / "
        "copy.deepcopy(payload)); on-node messages alias the sender's object"
    )

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._tainted: Set[str] = set()
        self._inboxes: Set[str] = set()

    # -- function scoping -------------------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        saved_t, self._tainted = self._tainted, set()
        saved_i, self._inboxes = self._inboxes, set()
        self.generic_visit(node)
        self._tainted = saved_t
        self._inboxes = saved_i

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- taint sources ----------------------------------------------------

    def _is_receive(self, value: ast.AST) -> bool:
        return isinstance(value, ast.Call) and call_name(value) in RECEIVE_CALLS

    def _is_exchange(self, value: ast.AST) -> bool:
        return isinstance(value, ast.Call) and call_name(value) in EXCHANGE_CALLS

    def _references_inbox(self, expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and sub.id in self._inboxes:
                return True
        return False

    def _is_fresh_container(self, value: ast.AST) -> bool:
        """A comprehension or copy-constructor builds a *new* container;
        mutating it cannot corrupt the sender even if its elements came from
        an inbox."""
        if isinstance(
            value, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return True
        return isinstance(value, ast.Call) and call_name(value) in COPY_CALLS

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        names = [n for t in node.targets for n in _target_names(t)]
        if self._is_exchange(node.value):
            self._inboxes.update(names)
            self._tainted.difference_update(names)
            return
        if self._is_fresh_container(node.value):
            self._tainted.difference_update(names)
            return
        if self._is_receive(node.value) or self._references_inbox(node.value):
            self._tainted.update(names)
            return
        if isinstance(node.value, ast.Name) and node.value.id in self._tainted:
            # Aliasing a tainted name taints the alias too.
            self._tainted.update(names)
            return
        # Any other re-binding (including a defensive copy) clears the taint.
        self._tainted.difference_update(names)

    def visit_For(self, node: ast.For) -> None:
        if (
            self._is_receive(node.iter)
            or self._is_exchange(node.iter)
            or self._references_inbox(node.iter)
        ):
            self._tainted.update(_target_names(node.target))
        self.generic_visit(node)

    # -- taint sinks -------------------------------------------------------

    def _base_name(self, expr: ast.AST):
        while isinstance(expr, (ast.Subscript, ast.Attribute)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and self._base_name(func.value) in self._tainted
        ):
            self.report(
                node,
                f"received payload '{self._base_name(func.value)}' mutated "
                f"in place via .{func.attr}() without a defensive copy",
            )
        self.generic_visit(node)

    def _check_store_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            name = self._base_name(target)
            if name in self._tainted:
                self.report(
                    target,
                    f"received payload '{name}' mutated in place by item/"
                    f"attribute assignment without a defensive copy",
                )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Store):
            self._check_store_target(node)
        self.generic_visit(node)
