"""Runtime sanitizers for the simulated message-passing runtime.

Three dynamic checks mirror the lint's hazard classes; all three are enabled
by passing ``sanitize=True`` to :func:`repro.parallel.executor.spmd`,
:class:`repro.parallel.comm.CommWorld` or
:class:`repro.parallel.network.Network`, or globally with the
``REPRO_SANITIZE=1`` environment variable:

* **alias sanitizer** — payloads delivered *by reference* (self messages,
  on-node messages, and the trusted ``copy_off_node=False`` channel) are
  wrapped by :func:`freeze` into read-only containers; any in-place mutation
  raises :class:`PayloadAliasError` at the mutation site instead of silently
  corrupting the sender.  Frozen containers subclass ``list``/``dict``/``set``
  so ``isinstance`` checks and equality keep working, and they pickle back to
  the *plain* type, so an off-node copy of a frozen payload is mutable again
  (exactly the MPI distributed-memory semantics).  NumPy arrays are frozen as
  read-only views (NumPy raises its own ``ValueError`` on write).

* **collective-order sanitizer** — every collective entry stamps
  ``(context, sequence) -> operation`` into a world-level ledger; the first
  rank to arrive records, later ranks compare, and an op mismatch raises
  :class:`CollectiveMismatchError` naming both ranks and operations —
  immediately, instead of the cross-matched hang MPI gives you.

* **deadlock detector** — a blocking receive with a concrete source
  registers a wait-for edge in the world's wait-for graph; the registration
  that closes a cycle raises :class:`DeadlockError` describing the full cycle
  instead of timing out after the world's deadlock timeout.

This module is dependency-free (NumPy optional) so :mod:`repro.parallel` can
import it without cycles.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Tuple

try:  # NumPy is a hard dependency of the repo, but keep the sanitizer usable
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None


def sanitize_default() -> bool:
    """Resolve the ambient sanitize mode from ``REPRO_SANITIZE``."""
    return os.environ.get("REPRO_SANITIZE", "").strip() not in ("", "0", "off")


class SanitizerError(RuntimeError):
    """Base class for runtime-sanitizer violations."""


class PayloadAliasError(SanitizerError):
    """A receiver mutated a payload that is shared with its sender."""


class CollectiveMismatchError(SanitizerError):
    """Two ranks entered different collectives at the same sequence slot."""


class DeadlockError(SanitizerError):
    """A cycle of blocking receives can never be satisfied."""


def _refuse(kind: str, op: str) -> None:
    raise PayloadAliasError(
        f"{kind}.{op}() on a message payload delivered by reference: the "
        f"object is shared with the sender (on-node shared-memory message); "
        f"copy it first, e.g. list(payload) / dict(payload)"
    )


class FrozenList(list):
    """A ``list`` whose mutators raise :class:`PayloadAliasError`.

    Subclasses ``list`` so receivers' ``isinstance``/equality/iteration all
    behave; pickling reduces to a plain ``list`` so off-node copies thaw.
    """

    def _blocked(self, op: str, *_a: Any, **_k: Any) -> None:
        _refuse("list", op)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (list, (list(self),))

    def append(self, *a: Any, **k: Any) -> None:
        self._blocked("append")

    def extend(self, *a: Any, **k: Any) -> None:
        self._blocked("extend")

    def insert(self, *a: Any, **k: Any) -> None:
        self._blocked("insert")

    def remove(self, *a: Any, **k: Any) -> None:
        self._blocked("remove")

    def pop(self, *a: Any, **k: Any) -> None:
        self._blocked("pop")

    def clear(self, *a: Any, **k: Any) -> None:
        self._blocked("clear")

    def sort(self, *a: Any, **k: Any) -> None:
        self._blocked("sort")

    def reverse(self, *a: Any, **k: Any) -> None:
        self._blocked("reverse")

    def __setitem__(self, *a: Any) -> None:
        self._blocked("__setitem__")

    def __delitem__(self, *a: Any) -> None:
        self._blocked("__delitem__")

    def __iadd__(self, other: Any) -> "FrozenList":
        self._blocked("__iadd__")
        return self  # pragma: no cover - _blocked always raises

    def __imul__(self, other: Any) -> "FrozenList":
        self._blocked("__imul__")
        return self  # pragma: no cover - _blocked always raises


class FrozenDict(dict):
    """A ``dict`` whose mutators raise :class:`PayloadAliasError`."""

    def _blocked(self, op: str, *_a: Any, **_k: Any) -> None:
        _refuse("dict", op)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (dict, (dict(self),))

    def __setitem__(self, *a: Any) -> None:
        self._blocked("__setitem__")

    def __delitem__(self, *a: Any) -> None:
        self._blocked("__delitem__")

    def update(self, *a: Any, **k: Any) -> None:
        self._blocked("update")

    def setdefault(self, *a: Any, **k: Any) -> None:
        self._blocked("setdefault")

    def pop(self, *a: Any, **k: Any) -> None:
        self._blocked("pop")

    def popitem(self, *a: Any, **k: Any) -> None:
        self._blocked("popitem")

    def clear(self, *a: Any, **k: Any) -> None:
        self._blocked("clear")

    def __ior__(self, other: Any) -> "FrozenDict":
        self._blocked("__ior__")
        return self  # pragma: no cover - _blocked always raises


class FrozenSet(set):
    """A ``set`` whose mutators raise :class:`PayloadAliasError`.

    (``frozenset`` is not a ``set`` subclass, so receivers doing
    ``isinstance(x, set)`` would break; this proxy keeps them working.)
    """

    def _blocked(self, op: str, *_a: Any, **_k: Any) -> None:
        _refuse("set", op)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (set, (set(self),))

    def add(self, *a: Any, **k: Any) -> None:
        self._blocked("add")

    def discard(self, *a: Any, **k: Any) -> None:
        self._blocked("discard")

    def remove(self, *a: Any, **k: Any) -> None:
        self._blocked("remove")

    def pop(self, *a: Any, **k: Any) -> None:
        self._blocked("pop")

    def clear(self, *a: Any, **k: Any) -> None:
        self._blocked("clear")

    def update(self, *a: Any, **k: Any) -> None:
        self._blocked("update")

    def difference_update(self, *a: Any, **k: Any) -> None:
        self._blocked("difference_update")

    def intersection_update(self, *a: Any, **k: Any) -> None:
        self._blocked("intersection_update")

    def symmetric_difference_update(self, *a: Any, **k: Any) -> None:
        self._blocked("symmetric_difference_update")

    def __ior__(self, other: Any) -> "FrozenSet":
        self._blocked("__ior__")
        return self  # pragma: no cover - _blocked always raises

    def __iand__(self, other: Any) -> "FrozenSet":
        self._blocked("__iand__")
        return self  # pragma: no cover - _blocked always raises

    def __isub__(self, other: Any) -> "FrozenSet":
        self._blocked("__isub__")
        return self  # pragma: no cover - _blocked always raises

    def __ixor__(self, other: Any) -> "FrozenSet":
        self._blocked("__ixor__")
        return self  # pragma: no cover - _blocked always raises


def freeze(obj: Any) -> Any:
    """Return a recursively read-only view/copy of ``obj``.

    Containers become frozen proxies (one shallow copy per level — the
    sanitizer trades a copy for the mutation trap); NumPy arrays become
    read-only views sharing the buffer; scalars and unknown objects pass
    through unchanged (arbitrary objects cannot be frozen generically —
    the AST lint's SPMD003 is the net for those).
    """
    if isinstance(obj, (FrozenList, FrozenDict, FrozenSet)):
        return obj
    if isinstance(obj, list):
        return FrozenList(freeze(item) for item in obj)
    if isinstance(obj, tuple):
        return tuple(freeze(item) for item in obj)
    if isinstance(obj, dict):
        return FrozenDict((key, freeze(value)) for key, value in obj.items())
    if isinstance(obj, set):
        return FrozenSet(freeze(item) for item in obj)
    if isinstance(obj, bytearray):
        return bytes(obj)
    if _np is not None and isinstance(obj, _np.ndarray):
        view = obj.view()
        view.flags.writeable = False
        return view
    return obj


def format_wait_cycle(cycle: Iterable[Tuple[int, Any]]) -> str:
    """Render a wait-for cycle as ``rank A waits for rank B (…)`` clauses.

    ``cycle`` is a sequence of ``(rank, (ctx, source, tag))`` entries; tags
    use the communicator's internal channel encoding, which is translated
    back to user-facing language here.
    """
    clauses = []
    for rank, (_ctx, source, tag) in cycle:
        if isinstance(tag, tuple) and tag and tag[0] == 0:
            what = f"tag {tag[1]}"
        elif isinstance(tag, tuple) and tag and tag[0] == 1:
            what = f"collective {tag[1]!r} #{tag[2]}"
        else:
            what = f"tag {tag!r}"
        clauses.append(f"rank {rank} waits for rank {source} ({what})")
    return "; ".join(clauses)
