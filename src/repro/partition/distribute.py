"""Initial distribution of a serial mesh to the parts of a DistributedMesh.

Mesh generation in this reproduction is serial; :func:`distribute` takes the
generated global mesh plus an element→part assignment (from any partitioner
in :mod:`repro.partitioners`) and produces the distributed representation:
per-part serial meshes containing each part's elements and their closure,
global ids matching across parts, symmetric remote-copy links for all
part-boundary entities, and copied geometric classification.

Global ids are simply the global mesh's entity ids, which makes the
distribution invertible and easy to debug.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..mesh.build import from_connectivity
from ..mesh.core import first_occurrence_unique
from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from ..obs.tracer import Tracer, trace_span
from ..parallel.perf import PerfCounters
from ..parallel.topology import MachineTopology
from .dmesh import DistributedMesh

Assignment = Union[Dict[Ent, int], Sequence[int], np.ndarray]


def distribute(
    mesh: Mesh,
    assignment: Assignment,
    nparts: Optional[int] = None,
    topology: Optional[MachineTopology] = None,
    counters: Optional[PerfCounters] = None,
    sanitize: Optional[bool] = None,
    tracer: Optional[Tracer] = None,
    codec: str = "binary",
) -> DistributedMesh:
    """Split ``mesh`` into a :class:`DistributedMesh` by element assignment.

    ``assignment`` maps each top-dimension element to a part id — either a
    dict keyed by element handle, or a sequence aligned with the elements in
    id order.  ``nparts`` defaults to ``max(assignment) + 1``; empty parts
    are allowed.  ``tracer`` is forwarded to the resulting
    :class:`DistributedMesh` (``None`` resolves to the installed default),
    as is ``codec`` (the wire codec of the part networks: ``"binary"`` or
    ``"pickle"``).
    """
    dim = mesh.dim()
    if dim < 1:
        raise ValueError("cannot distribute a mesh without elements")
    elements: List[Ent] = list(mesh.entities(dim))

    if isinstance(assignment, dict):
        try:
            parts_of = np.asarray([assignment[e] for e in elements], dtype=np.int64)
        except KeyError as missing:
            raise ValueError(f"assignment misses element {missing}") from None
    else:
        parts_of = np.asarray(assignment, dtype=np.int64)
        if parts_of.shape != (len(elements),):
            raise ValueError(
                f"assignment length {parts_of.shape} != element count "
                f"{len(elements)}"
            )
    if len(parts_of) and parts_of.min() < 0:
        raise ValueError("negative part id in assignment")
    needed = int(parts_of.max()) + 1 if len(parts_of) else 1
    if nparts is None:
        nparts = needed
    elif nparts < needed:
        raise ValueError(f"assignment references part {needed - 1} >= {nparts}")

    dmesh = DistributedMesh(
        nparts,
        model=mesh.model,
        topology=topology,
        counters=counters,
        sanitize=sanitize,
        tracer=tracer,
        codec=codec,
    )

    with trace_span(dmesh.tracer, "distribute", nparts=nparts):
        # holders[d][gid] -> [(pid, local Ent)] for remote links.
        holders: List[Dict[int, List]] = [{}, {}, {}, {}]

        store = mesh._stores[dim]
        etypes = {store.etype(e.idx) for e in elements}
        single_type = etypes.pop() if len(etypes) == 1 else None

        with trace_span(dmesh.tracer, "distribute.build_parts"):
            for pid in range(nparts):
                local_elements = [
                    e for e, p in zip(elements, parts_of) if p == pid
                ]
                part = dmesh.part(pid)
                if not local_elements:
                    continue
                _build_part(
                    mesh, dmesh, part, local_elements, single_type, holders
                )

        # Symmetric remote links for entities held by more than one part.
        with trace_span(dmesh.tracer, "distribute.link_boundaries"):
            for dim_h in range(dim):  # elements are never shared
                for gid, held in holders[dim_h].items():
                    if len(held) < 2:
                        continue
                    for pid, ent in held:
                        dmesh.part(pid).remotes[ent] = {
                            other_pid: other_ent
                            for other_pid, other_ent in held
                            if other_pid != pid
                        }

        # Future gid allocations must not collide with the global ids.
        for d in range(4):
            dmesh.note_gid(d, mesh._stores[d].capacity)
    return dmesh


def _build_part(mesh, dmesh, part, local_elements, single_type, holders):
    """Construct one part's serial mesh and record gid holders."""
    dim = mesh.dim()
    # Compact global vertex ids used by this part: first-occurrence order
    # over the row-major element connectivity, extracted in one gather.
    element_ids = np.fromiter(
        (e.idx for e in local_elements), dtype=np.int64, count=len(local_elements)
    )
    if single_type is not None:
        vmat = mesh.core.verts_matrix(dim, element_ids)
        global_verts_arr = first_occurrence_unique(vmat.reshape(-1))
        local_of = np.zeros(mesh.core.top[0], dtype=np.int64)
        local_of[global_verts_arr] = np.arange(len(global_verts_arr))
        conn = local_of[vmat]
        global_verts: List[int] = global_verts_arr.tolist()
        coords = mesh.coords_view()[global_verts_arr]
        local_mesh = from_connectivity(coords, conn, single_type)
    else:
        global_verts = []
        seen: Dict[int, int] = {}
        conn_rows: List[List[int]] = []
        for element in local_elements:
            row = []
            for v in mesh.verts_of(element):
                local = seen.get(v.idx)
                if local is None:
                    local = seen[v.idx] = len(global_verts)
                    global_verts.append(v.idx)
                row.append(local)
            conn_rows.append(row)
        coords = mesh.coords_view()[global_verts]
        local_mesh = Mesh()
        vhandles = [local_mesh.create_vertex(c) for c in coords]
        for element, row in zip(local_elements, conn_rows):
            local_mesh.create(
                mesh.etype(element), [vhandles[i] for i in row]
            )
    local_mesh.model = mesh.model
    part.mesh = local_mesh

    # Vertices: gid = global id; classification copied; holder recorded.
    for local_idx, global_idx in enumerate(global_verts):
        ent = Ent(0, local_idx)
        part.set_gid(ent, global_idx)
        gent = mesh.classification(Ent(0, global_idx))
        if gent is not None:
            local_mesh.set_classification(ent, gent)
        holders[0].setdefault(global_idx, []).append((part.pid, ent))

    # Edges and faces: match to the global mesh by sorted global vertex ids.
    for d in range(1, dim):
        lookup = mesh._lookup[d - 1]
        for ent in local_mesh.entities(d):
            key = tuple(
                sorted(global_verts[i] for i in local_mesh._stores[d].verts(ent.idx))
            )
            global_idx = lookup.get(key)
            if global_idx is None:
                raise AssertionError(
                    f"part {part.pid}: local entity {ent} has no global match"
                )
            part.set_gid(ent, global_idx)
            gent = mesh.classification(Ent(d, global_idx))
            if gent is not None:
                local_mesh.set_classification(ent, gent)
            holders[d].setdefault(global_idx, []).append((part.pid, ent))

    # Elements: created in local_elements order by both construction paths.
    for local_idx, element in enumerate(local_elements):
        ent = Ent(dim, local_idx)
        part.set_gid(ent, element.idx)
        gent = mesh.classification(element)
        if gent is not None:
            local_mesh.set_classification(ent, gent)
