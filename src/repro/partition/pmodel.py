"""The partition model: topology of the part decomposition.

"For the purpose of representation of a partitioned mesh and efficient
parallel operations, a partition model is developed" (paper, Section II-C):

* a **partition (model) entity** ``P^d_i`` represents a group of mesh
  entities that share the same residence part set; one part of the set is
  designated the owning part;
* **partition classification** is the unique association of mesh entities to
  partition model entities.

The partition model of this reproduction is *derived* from the distributed
mesh's remote-copy links: a partition entity exists for every distinct
residence set, its dimension is ``mesh_dim - (|residence| - 1)`` clamped to
zero (in Fig. 3/4 of the paper: interior entities → partition faces, entities
shared by two parts → partition edges, by three → the partition vertex), and
its owner is the smallest residence part unless a custom rule is installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..mesh.entity import Ent
from .dmesh import DistributedMesh

OwnerRule = Callable[[Tuple[int, ...]], int]


def default_owner_rule(residence: Tuple[int, ...]) -> int:
    """The deterministic default: the smallest residence part owns."""
    return min(residence)


@dataclass(frozen=True)
class PartitionEntity:
    """One partition model entity ``P^d_i``."""

    dim: int
    tag: int
    residence: Tuple[int, ...]
    owner: int

    def __repr__(self) -> str:
        return f"P{self.dim}_{self.tag}{list(self.residence)}@{self.owner}"


class PartitionModel:
    """Partition model entities + classification for one distributed mesh.

    Built by :func:`build_partition_model`; valid until the next migration
    (the builders are cheap — rebuild after modifying the partition).
    """

    def __init__(
        self, dmesh: DistributedMesh, owner_rule: OwnerRule = default_owner_rule
    ) -> None:
        self.dmesh = dmesh
        self.owner_rule = owner_rule
        self._by_residence: Dict[Tuple[int, ...], PartitionEntity] = {}
        mesh_dim = dmesh.element_dim()
        next_tag = [0, 0, 0, 0]
        # Interior entities of part p have residence (p,); shared entities'
        # residence sets come from the remote-copy links.
        residences = set()
        for part in dmesh:
            residences.add((part.pid,))
            for ent in part.remotes:
                residences.add(part.residence(ent))
        for residence in sorted(residences, key=lambda r: (len(r), r)):
            dim = max(mesh_dim - (len(residence) - 1), 0)
            pent = PartitionEntity(
                dim, next_tag[dim], residence, owner_rule(residence)
            )
            next_tag[dim] += 1
            self._by_residence[residence] = pent

    # -- queries ------------------------------------------------------------

    def entities(self, dim: Optional[int] = None) -> List[PartitionEntity]:
        """All partition entities (of one dimension), deterministic order."""
        result = sorted(
            self._by_residence.values(), key=lambda p: (p.dim, p.tag)
        )
        if dim is None:
            return result
        return [p for p in result if p.dim == dim]

    def classification(self, pid: int, ent: Ent) -> PartitionEntity:
        """Partition classification of a mesh entity on part ``pid``."""
        residence = self.dmesh.part(pid).residence(ent)
        try:
            return self._by_residence[residence]
        except KeyError:
            raise KeyError(
                f"no partition entity for residence {residence}; "
                "was the partition modified since the model was built?"
            ) from None

    def owner(self, pid: int, ent: Ent) -> int:
        """Owning part of a mesh entity under this model's owner rule."""
        return self.classification(pid, ent).owner

    def count(self, dim: Optional[int] = None) -> int:
        return len(self.entities(dim))

    def __repr__(self) -> str:
        counts = [self.count(d) for d in range(4)]
        return (
            "PartitionModel(P0={}, P1={}, P2={}, P3={})".format(*counts)
        )


def build_partition_model(
    dmesh: DistributedMesh, owner_rule: OwnerRule = default_owner_rule
) -> PartitionModel:
    """Construct the partition model of the current distribution."""
    return PartitionModel(dmesh, owner_rule)
