"""Ghosting: read-only off-part element copies along the part boundary.

"Ghosting: a procedure to localize off-part mesh entities to avoid off-node
communications for computations.  A ghost is a read-only, duplicated,
off-part internal entity copy including tag data" (paper, Section II-C).

:func:`ghost_layer` gives every part a copy of the off-part elements
adjacent (through a chosen bridge dimension) to its part-boundary entities.
Layers are built with a pull protocol: parts request the elements adjacent
to entities they share (first layer) or adjacent to their existing ghosts'
home elements (subsequent layers), and the owning parts respond with
self-contained element bundles.  Ghost elements and the boundary entities
created for them are marked on the receiving part: they are excluded from
load accounting, never own anything, and are stripped wholesale by
:func:`delete_ghosts` (required before any migration).  Requested tag values
travel with the copies.

Limitation (documented): layers beyond the first pull only from each ghost's
home part, so a ring that wraps around a third part in one step is truncated
there — the same locality approximation typical ghosting implementations
make between re-ghosting calls.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..mesh.entity import Ent
from ..obs.stats import CommProbe, GhostDeleteStats, GhostStats
from ..obs.tracer import trace_span
from ..parallel.codec import decode_element_batch, encode_element_batch
from .dmesh import DistributedMesh
from .migration import _pack_element, _unpack_batch, _unpack_element
from .part import Part

_TAG_REQUEST = 10
_TAG_GHOST = 11


def ghost_layer(
    dmesh: DistributedMesh,
    bridge_dim: int = 0,
    layers: int = 1,
    tags: Sequence[str] = (),
) -> GhostStats:
    """Create ``layers`` ghost layers; returns a :class:`GhostStats` record.

    ``bridge_dim`` selects the adjacency that defines the layer: vertices
    (0) give the widest layer, faces (dim-1) the narrowest.  ``tags`` lists
    tag names whose element values are copied along.

    ``stats.ghosts_created`` counts ghost *elements*; ``per_dimension``
    additionally counts the closure entities (vertices, edges, faces) the
    copies brought along.
    """
    dim = dmesh.element_dim()
    if not 0 <= bridge_dim < dim:
        raise ValueError(
            f"bridge dimension must be below the element dimension {dim}"
        )
    probe = CommProbe(dmesh.counters)
    total = 0
    per_dim = [0, 0, 0, 0]
    with trace_span(dmesh.tracer, "ghost_layer", bridge_dim=bridge_dim):
        for layer in range(layers):
            with trace_span(dmesh.tracer, f"ghost_layer.layer{layer}"):
                created, created_per_dim = _one_layer(
                    dmesh, bridge_dim, tags, first=(layer == 0)
                )
            total += created
            for d in range(4):
                per_dim[d] += created_per_dim[d]
    return GhostStats(
        ghosts_created=total,
        layers=layers,
        per_dimension=tuple(per_dim),
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
        encoded_bytes=probe.encoded_bytes(),
        messages_coalesced=probe.messages_coalesced(),
    )


def _one_layer(
    dmesh: DistributedMesh, bridge_dim: int, tags, first: bool
) -> Tuple[int, List[int]]:
    dim = dmesh.element_dim()
    router = dmesh.router()

    # Phase 1: requests.  First layer: "send me the elements adjacent to the
    # entity we share".  Later layers: "send me the neighbors of the element
    # my ghost mirrors".
    for part in dmesh:
        if first:
            for ent in sorted(part.remotes):
                if ent.dim != bridge_dim:
                    continue
                for dest, dest_ent in sorted(part.remotes[ent].items()):
                    router.post(
                        part.pid, dest, _TAG_REQUEST, ("bridge", dest_ent)
                    )
        else:
            for ghost in sorted(part.ghosts):
                if ghost.dim != dim:
                    continue
                home_pid, home_ent = part.ghost_home[ghost]
                router.post(
                    part.pid, home_pid, _TAG_REQUEST, ("ring", home_ent)
                )

    requests = router.exchange()

    # Phase 2: responses with element bundles (deduplicated per requester).
    # Under the binary codec every (responder, requester) pair ships one
    # encoded buffer instead of one pickled dict per element.
    binary = dmesh.codec == "binary"
    router = dmesh.router()
    for pid in sorted(requests):
        part = dmesh.part(pid)
        queued: Dict[int, Set[Ent]] = {}
        batches: Dict[int, List[dict]] = {}
        for src, _tag, (kind, ent) in requests[pid]:
            if not part.mesh.has(ent):
                continue
            if kind == "bridge":
                elements = part.mesh.adjacent(ent, dim)
            else:
                elements = part.mesh.second_adjacent(ent, bridge_dim, dim)
            bucket = queued.setdefault(src, set())
            for element in elements:
                if part.is_ghost(element) or element in bucket:
                    continue
                bucket.add(element)
                bundle = _pack_element(part, element)
                bundle["tags"] = {
                    name: part.mesh.tag(name).get(element)
                    for name in tags
                    if part.mesh.tags.find(name) is not None
                }
                bundle["home"] = (part.pid, element)
                if binary:
                    batches.setdefault(src, []).append(bundle)
                else:
                    router.post(part.pid, src, _TAG_GHOST, bundle)
        for src, bundles in sorted(batches.items()):
            blob = encode_element_batch(bundles)
            dmesh.counters.add("net.bytes.encoded", len(blob))
            dmesh.counters.add("net.messages.coalesced", len(bundles))
            router.post(part.pid, src, _TAG_GHOST, blob)

    inboxes = router.exchange()
    created = 0
    per_dim = [0, 0, 0, 0]
    for pid in sorted(inboxes):
        part = dmesh.part(pid)
        for _src, _tag, payload in inboxes[pid]:
            if isinstance(payload, (bytes, bytearray)):
                created += _unpack_ghost_batch(
                    part, decode_element_batch(payload), per_dim
                )
            else:
                created += _unpack_ghost(part, payload, per_dim)
    dmesh.counters.add("ghosting.elements", created)
    return created, per_dim


def _unpack_ghost(part: Part, bundle: dict, per_dim: List[int]) -> int:
    """Create a ghost element bundle; returns 1 if a new ghost appeared.

    ``per_dim`` accumulates the count of entities created per dimension.
    """
    mesh = part.mesh
    home_pid, home_ent = bundle["home"]
    element_gid = bundle["element"][1]
    if part.by_gid(bundle["element"][0], element_gid) is not None:
        return 0  # already present (real element or earlier ghost copy)

    before = [set(part._gid[d]) for d in range(4)]
    element = _unpack_element(part, bundle)
    # Everything that just appeared is a ghost entity homed off-part;
    # entities that already existed (part-boundary copies) stay as they are.
    for d in range(4):
        for idx in part._gid[d].keys() - before[d]:
            ghost = Ent(d, idx)
            per_dim[d] += 1
            part.ghosts.add(ghost)
            if ghost == element:
                part.ghost_home[ghost] = (home_pid, home_ent)
            else:
                part.ghost_home[ghost] = (home_pid, None)
    for name, value in bundle.get("tags", {}).items():
        if value is not None:
            mesh.tag(name).set(element, value)
    return 1


def _unpack_ghost_batch(part: Part, bundles, per_dim: List[int]) -> int:
    """Create one decoded ghost batch; returns how many ghosts appeared.

    All bundles in a coalesced buffer come from the same owner part, so the
    before/after ghost classification runs once for the whole batch and the
    mesh surgery goes through the deduplicating :func:`_unpack_batch`.
    """
    fresh = [
        b for b in bundles
        if part.by_gid(b["element"][0], b["element"][1]) is None
    ]
    if not fresh:
        return 0
    before = [set(part._gid[d]) for d in range(4)]
    elements = _unpack_batch(part, fresh)
    element_home = {
        element: bundle["home"]
        for bundle, element in zip(fresh, elements)
    }
    home_pid = fresh[0]["home"][0]
    for d in range(4):
        for idx in part._gid[d].keys() - before[d]:
            ghost = Ent(d, idx)
            per_dim[d] += 1
            part.ghosts.add(ghost)
            part.ghost_home[ghost] = element_home.get(
                ghost, (home_pid, None)
            )
    mesh = part.mesh
    for bundle, element in zip(fresh, elements):
        for name, value in bundle.get("tags", {}).items():
            if value is not None:
                mesh.tag(name).set(element, value)
    return len(fresh)


def delete_ghosts(dmesh: DistributedMesh) -> GhostDeleteStats:
    """Remove every ghost entity from every part.

    Returns a :class:`GhostDeleteStats` record; deletion is purely local,
    so its communication fields are always zero.
    """
    probe = CommProbe(dmesh.counters)
    removed = 0
    per_dim = [0, 0, 0, 0]
    with trace_span(dmesh.tracer, "delete_ghosts"):
        for part in dmesh:
            mesh = part.mesh
            for d in range(3, -1, -1):
                for ghost in sorted(
                    (g for g in part.ghosts if g.dim == d), reverse=True
                ):
                    if not mesh.has(ghost):
                        continue
                    if mesh.up(ghost):
                        # Still bounds a surviving entity: it was promoted to
                        # a real boundary entity of this part and must stay.
                        continue
                    part.drop_gid(ghost)
                    part.remotes.pop(ghost, None)
                    mesh.destroy(ghost)
                    removed += 1
                    per_dim[d] += 1
            part.ghosts.clear()
            part.ghost_home.clear()
    dmesh.counters.add("ghosting.deleted", removed)
    return GhostDeleteStats(
        entities_removed=removed,
        per_dimension=tuple(per_dim),
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
    )
