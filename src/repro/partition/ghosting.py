"""Ghosting: read-only off-part element copies in a depth-k overlap.

"Ghosting: a procedure to localize off-part mesh entities to avoid off-node
communications for computations.  A ghost is a read-only, duplicated,
off-part internal entity copy including tag data" (paper, Section II-C).

:func:`ghost_layer` gives every part a copy of the off-part elements within
``depth`` rings of its boundary, where one ring is adjacency through a
chosen bridge dimension.  The whole procedure is expressed over the
:class:`~repro.parallel.sf.StarForest` primitive: each ring, a discovery
pass builds the forest whose roots are owned elements and whose leaves are
the parts that need copies of them, and one ``bcast`` of element-closure
bundles materializes the ring.  Iterating discovery over the previous
ring's new elements is star-forest composition in action — the depth-k
overlap forest is the product of k one-ring forests.

Ring discovery, in supersteps:

1. **ring 0** — each part asks every co-holder of a shared bridge entity
   for the elements adjacent to it (1 exchange), then the bundles arrive
   via ``bcast`` (1 exchange);
2. **rings ≥ 1** — the *front* is the set of bridge entities in the
   closure of the previous ring's new ghost elements.  A ghost front
   entity is queried at its home part by global id; a real shared front
   entity at every co-holder (1 exchange).  With
   ``Overlap(include_closure=True)`` (the default) a home part also
   *refers* the request to every other real holder of the entity
   (1 exchange) — that referral is what makes the depth-k region exact
   when a ring wraps around a part corner onto a third part.  Bundles
   again arrive via one ``bcast``.

With ``include_closure=False`` the referral pass is skipped: each ring
costs one less superstep and pulls only from parts the requester already
knows, truncating rings that wrap corners — the locality approximation
the pre-SF implementation always made (see
:mod:`repro.partition.legacy`).

Ghost elements and the closure entities created for them are marked on the
receiving part: they are excluded from load accounting, never own
anything, and are stripped wholesale by :func:`delete_ghosts` (required
before any migration).  Requested tag values travel with the copies.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..mesh.entity import Ent
from ..obs.stats import CommProbe, GhostDeleteStats, GhostStats
from ..obs.tracer import trace_span
from ..parallel.sf import BUNDLES, StarForest
from .dmesh import DistributedMesh
from .migration import _pack_element, _unpack_batch
from .part import Part

_TAG_REQUEST = 10
_TAG_REFER = 12


@dataclass(frozen=True)
class Overlap:
    """Configuration of a depth-k ghost overlap.

    ``depth`` rings of elements are ghosted, each ring being adjacency
    through ``bridge_dim`` (vertices give the widest ring, faces the
    narrowest).  ``include_closure`` keeps the region exact across part
    corners via the referral pass; switching it off trades exactness at
    corners for one fewer superstep per ring beyond the first.
    """

    depth: int = 1
    bridge_dim: int = 0
    include_closure: bool = True

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ValueError(f"overlap depth must be >= 0, got {self.depth}")
        if not 0 <= self.bridge_dim <= 2:
            raise ValueError(
                f"bridge dimension must be in [0, 2], got {self.bridge_dim}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "depth": self.depth,
            "bridge_dim": self.bridge_dim,
            "include_closure": self.include_closure,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Overlap":
        return cls(
            depth=int(payload.get("depth", 1)),
            bridge_dim=int(payload.get("bridge_dim", 0)),
            include_closure=bool(payload.get("include_closure", True)),
        )

    @classmethod
    def coerce(cls, value: Any) -> "Overlap":
        """Accept an :class:`Overlap` or its dict form."""
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise TypeError(
            f"expected an Overlap or a dict, got {type(value).__name__}"
        )


_legacy_warned = False


def _resolve_overlap(
    bridge_dim: Optional[int],
    layers: Optional[int],
    overlap: Optional[Any],
    depth: Optional[int],
) -> Overlap:
    """Map the accepted argument spellings onto one :class:`Overlap`."""
    global _legacy_warned
    legacy = bridge_dim is not None or layers is not None
    if overlap is not None:
        if legacy or depth is not None:
            raise ValueError(
                "pass either overlap= or the bridge_dim/layers/depth "
                "arguments, not both"
            )
        return Overlap.coerce(overlap)
    if depth is not None:
        if legacy:
            raise ValueError(
                "pass either depth= or the legacy bridge_dim/layers "
                "arguments, not both"
            )
        return Overlap(depth=depth)
    if legacy:
        if not _legacy_warned:
            _legacy_warned = True
            warnings.warn(
                "ghost_layer(bridge_dim=..., layers=...) is deprecated; "
                "pass overlap=Overlap(depth=..., bridge_dim=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        return Overlap(
            depth=1 if layers is None else layers,
            bridge_dim=0 if bridge_dim is None else bridge_dim,
        )
    return Overlap()


def ghost_layer(
    dmesh: DistributedMesh,
    bridge_dim: Optional[int] = None,
    layers: Optional[int] = None,
    tags: Sequence[str] = (),
    *,
    overlap: Optional[Any] = None,
    depth: Optional[int] = None,
) -> GhostStats:
    """Create a depth-k ghost overlap; returns a :class:`GhostStats` record.

    The overlap is configured with ``overlap=Overlap(...)`` (or the
    ``depth=k`` shortcut for ``Overlap(depth=k)``); the positional
    ``bridge_dim``/``layers`` spelling is a deprecated shim that warns once
    per process and maps onto the same :class:`Overlap`.  ``tags`` lists
    tag names whose element values are copied along.

    ``stats.ghosts_created`` counts ghost *elements*; ``per_dimension``
    additionally counts the closure entities (vertices, edges, faces) the
    copies brought along; ``stats.layers`` echoes the overlap depth and
    ``stats.sf_ops`` the star-forest broadcasts executed (one per ring).
    """
    ov = _resolve_overlap(bridge_dim, layers, overlap, depth)
    dim = dmesh.element_dim()
    if not 0 <= ov.bridge_dim < dim:
        raise ValueError(
            f"bridge dimension must be below the element dimension {dim}"
        )
    probe = CommProbe(dmesh.counters)
    total = 0
    per_dim = [0, 0, 0, 0]
    sf_ops = 0
    with trace_span(
        dmesh.tracer, "ghost_layer",
        depth=ov.depth, bridge_dim=ov.bridge_dim,
        include_closure=ov.include_closure,
    ):
        prev_new: Dict[int, List[Ent]] = {}
        for ring in range(ov.depth):
            with trace_span(dmesh.tracer, f"ghost_layer.layer{ring}"):
                forest = _ring_forest(
                    dmesh, ov, ring, first=(ring == 0), prev_new=prev_new
                )
                created, created_per_dim, prev_new = _fill_ring(
                    dmesh, forest, tags
                )
            sf_ops += 1
            total += created
            for d in range(4):
                per_dim[d] += created_per_dim[d]
    return GhostStats(
        ghosts_created=total,
        layers=ov.depth,
        per_dimension=tuple(per_dim),
        sf_ops=sf_ops,
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
        encoded_bytes=probe.encoded_bytes(),
        messages_coalesced=probe.messages_coalesced(),
    )


def _ring_front(
    part: Part, new_elems: List[Ent], bridge_dim: int, dim: int
) -> List[Ent]:
    """Bridge entities in the closure of the previous ring's new elements."""
    front: Set[Ent] = set()
    for element in new_elems:
        if element.dim != dim:
            continue
        front.update(part.mesh.adjacent(element, bridge_dim))
    return sorted(front)


def _queue_adjacent(
    part: Part,
    ent: Ent,
    dim: int,
    requester: int,
    have: frozenset,
    queues: Dict[Tuple[int, int], List[Ent]],
    seen: Dict[Tuple[int, int], Set[Ent]],
) -> None:
    """Queue ``ent``'s adjacent owned elements for ``requester``.

    ``have`` is the requester's set of already-held element gids — those
    are marked seen without queueing, so repeat rings do not re-ship what
    the requester materialized earlier.
    """
    key = (part.pid, requester)
    bucket = seen.setdefault(key, set())
    queue = queues.setdefault(key, [])
    for element in part.mesh.adjacent(ent, dim):
        if part.is_ghost(element) or element in bucket:
            continue
        bucket.add(element)
        if part.gid(element) in have:
            continue
        queue.append(element)


def _ring_forest(
    dmesh: DistributedMesh,
    ov: Overlap,
    ring: int,
    first: bool,
    prev_new: Dict[int, List[Ent]],
) -> StarForest:
    """Discovery pass: build the star forest of one overlap ring.

    Roots are ``(owner part, element)``; leaves are
    ``(requester part, (owner part, ordinal))`` where the ordinal is the
    element's position in the owner→requester queue — which makes the
    ``bcast`` batch layout bundle-for-bundle identical to the pre-SF
    pull protocol's on ring 0.
    """
    dim = dmesh.element_dim()
    bdim = ov.bridge_dim
    router = dmesh.router()

    if first:
        # Ring 0: ask every co-holder of a shared bridge entity for the
        # elements adjacent to it (all holders are known: remote-copy
        # links are complete among real copies).
        for part in dmesh:
            for ent in sorted(part.remotes):
                if ent.dim != bdim:
                    continue
                for dest, dest_ent in sorted(part.remotes[ent].items()):
                    router.post(
                        part.pid, dest, _TAG_REQUEST,
                        ("bridge", dest_ent, ()),
                    )
    else:
        # Rings >= 1: query the front.  Ghost front entities are resolved
        # at their home part by gid; real shared ones at every co-holder.
        # Interior front entities need no query — every element adjacent
        # to them is already local.
        for part in dmesh:
            mesh = part.mesh
            for b in _ring_front(part, prev_new.get(part.pid, []), bdim, dim):
                have = tuple(sorted(
                    part.gid(e) for e in mesh.adjacent(b, dim)
                ))
                if part.is_ghost(b):
                    home_pid = part.ghost_home[b][0]
                    router.post(
                        part.pid, home_pid, _TAG_REQUEST,
                        ("front", part.gid(b), have),
                    )
                elif part.remotes.get(b):
                    for dest, dest_ent in sorted(part.remotes[b].items()):
                        router.post(
                            part.pid, dest, _TAG_REQUEST,
                            ("bridge", dest_ent, have),
                        )

    requests = router.exchange()

    queues: Dict[Tuple[int, int], List[Ent]] = {}
    seen: Dict[Tuple[int, int], Set[Ent]] = {}
    refer = ov.include_closure and not first
    if refer:
        router = dmesh.router()
    for pid in sorted(requests):
        part = dmesh.part(pid)
        for src, _tag, (kind, ref, have) in requests[pid]:
            have_set = frozenset(have)
            if kind == "bridge":
                ent = ref
                if not part.mesh.has(ent):
                    continue
            else:  # "front": resolve the requester's ghost by gid
                ent = part.by_gid(bdim, ref)
                if ent is None or not part.mesh.has(ent):
                    continue
                if refer:
                    for q_pid, q_ent in sorted(
                        part.remotes.get(ent, {}).items()
                    ):
                        if q_pid == src:
                            continue
                        router.post(
                            part.pid, q_pid, _TAG_REFER,
                            ("refer", q_ent, src, have),
                        )
            _queue_adjacent(part, ent, dim, src, have_set, queues, seen)

    if refer:
        # Referral pass: home parts forwarded corner-wrapping requests to
        # the other real holders; those holders queue their elements for
        # the *original* requester.
        referrals = router.exchange()
        for pid in sorted(referrals):
            part = dmesh.part(pid)
            for _src, _tag, (_kind, ent, requester, have) in referrals[pid]:
                if not part.mesh.has(ent) or part.is_ghost(ent):
                    continue
                _queue_adjacent(
                    part, ent, dim, requester, frozenset(have), queues, seen
                )

    forest = StarForest(dmesh, name=f"ghost.ring{ring}")
    for (owner, requester) in sorted(queues):
        for ordinal, element in enumerate(queues[(owner, requester)]):
            forest.add_leaf(requester, (owner, ordinal), owner, element)
    return forest


def _fill_ring(
    dmesh: DistributedMesh, forest: StarForest, tags: Sequence[str]
) -> Tuple[int, List[int], Dict[int, List[Ent]]]:
    """One ``bcast`` of element-closure bundles materializes the ring."""
    per_dim = [0, 0, 0, 0]
    created_total = 0
    new_elements: Dict[int, List[Ent]] = {}

    def pack(owner: int, element: Ent) -> dict:
        part = dmesh.part(owner)
        bundle = _pack_element(part, element)
        bundle["tags"] = {
            name: part.mesh.tag(name).get(element)
            for name in tags
            if part.mesh.tags.find(name) is not None
        }
        bundle["home"] = (owner, element)
        return bundle

    def unpack(requester: int, _owner: int, items) -> None:
        nonlocal created_total
        part = dmesh.part(requester)
        bundles = [bundle for _handle, bundle in items]
        created, fresh = _unpack_ghost_batch(part, bundles, per_dim)
        created_total += created
        new_elements.setdefault(requester, []).extend(fresh)

    forest.bcast(pack, batch_set=unpack, datatype=BUNDLES)
    dmesh.counters.add("ghosting.elements", created_total)
    return created_total, per_dim, new_elements


def _unpack_ghost_batch(
    part: Part, bundles, per_dim: List[int]
) -> Tuple[int, List[Ent]]:
    """Create one decoded ghost batch.

    Returns ``(ghost elements created, their local handles)``; ``per_dim``
    accumulates every created entity (elements plus closure) per dimension.
    All bundles in a coalesced buffer come from the same owner part, so the
    before/after ghost classification runs once for the whole batch and the
    mesh surgery goes through the deduplicating
    :func:`~repro.partition.migration._unpack_batch`.
    """
    fresh = [
        b for b in bundles
        if part.by_gid(b["element"][0], b["element"][1]) is None
    ]
    if not fresh:
        return 0, []
    before = [part.gid_index_set(d) for d in range(4)]
    elements = _unpack_batch(part, fresh)
    element_home = {
        element: bundle["home"]
        for bundle, element in zip(fresh, elements)
    }
    home_pid = fresh[0]["home"][0]
    for d in range(4):
        for idx in part.gid_index_set(d) - before[d]:
            ghost = Ent(d, idx)
            per_dim[d] += 1
            part.ghosts.add(ghost)
            part.ghost_home[ghost] = element_home.get(
                ghost, (home_pid, None)
            )
    mesh = part.mesh
    for bundle, element in zip(fresh, elements):
        for name, value in bundle.get("tags", {}).items():
            if value is not None:
                mesh.tag(name).set(element, value)
    return len(fresh), elements


def delete_ghosts(dmesh: DistributedMesh) -> GhostDeleteStats:
    """Remove every ghost entity from every part.

    Returns a :class:`GhostDeleteStats` record; deletion is purely local,
    so its communication fields are always zero.
    """
    probe = CommProbe(dmesh.counters)
    removed = 0
    per_dim = [0, 0, 0, 0]
    with trace_span(dmesh.tracer, "delete_ghosts"):
        for part in dmesh:
            mesh = part.mesh
            for d in range(3, -1, -1):
                for ghost in sorted(
                    (g for g in part.ghosts if g.dim == d), reverse=True
                ):
                    if not mesh.has(ghost):
                        continue
                    if mesh.up(ghost):
                        # Still bounds a surviving entity: it was promoted to
                        # a real boundary entity of this part and must stay.
                        continue
                    part.drop_gid(ghost)
                    part.remotes.pop(ghost, None)
                    mesh.destroy(ghost)
                    removed += 1
                    per_dim[d] += 1
            part.ghosts.clear()
            part.ghost_home.clear()
    dmesh.counters.add("ghosting.deleted", removed)
    return GhostDeleteStats(
        entities_removed=removed,
        per_dimension=tuple(per_dim),
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
    )
