"""Distributed-mesh checkpointing.

Long adaptive simulations checkpoint the partitioned mesh so a run can
restart without re-partitioning (PUMI's SMB file-per-part format).  This
module snapshots a :class:`~repro.partition.dmesh.DistributedMesh` into a
directory — one ``.npz`` per part holding coordinates, connectivity, vertex
gids and vertex classification, plus a manifest — and restores it with all
remote-copy links rebuilt from the vertex gids (the same rendezvous used
after migration, so a reloaded mesh is verified-identical in structure).
Tags, fields and ghosts are runtime state and are not checkpointed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..gmodel.model import Model
from ..mesh.build import from_connectivity
from ..mesh.entity import Ent
from ..parallel.perf import PerfCounters
from ..parallel.topology import MachineTopology
from .dmesh import DistributedMesh
from .migration import rebuild_links
from .part import Part

_MANIFEST = "manifest.json"


def save_dmesh(dmesh: DistributedMesh, path: Union[str, Path]) -> Path:
    """Write the distribution to ``path`` (a directory, created if needed)."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    dim = dmesh.element_dim()
    manifest = {
        "nparts": dmesh.nparts,
        "element_dim": dim,
        "gid_next": list(dmesh._gid_next),
        "has_model": dmesh.model is not None,
    }
    for part in dmesh:
        mesh = part.mesh
        store = mesh._stores[dim]
        vert_map = mesh._stores[0].compact_map()
        elements = list(store.indices())
        etypes = sorted({store.etype(i) for i in elements})
        if len(etypes) > 1:
            raise ValueError(
                "checkpointing supports single-element-type parts"
            )
        coords = mesh.coords_view()[list(vert_map.keys())] if vert_map else (
            np.zeros((0, 3))
        )
        conn = (
            np.asarray(
                [[vert_map[v] for v in store.verts(i)] for i in elements],
                dtype=np.int64,
            )
            if elements
            else np.zeros((0, 1), dtype=np.int64)
        )
        vgids = np.asarray(
            [part.gid(Ent(0, idx)) for idx in vert_map], dtype=np.int64
        )
        egids = np.asarray(
            [part.gid(Ent(dim, i)) for i in elements], dtype=np.int64
        )
        vclass = np.asarray(
            [
                (
                    mesh.classification(Ent(0, idx)).dim
                    if mesh.classification(Ent(0, idx)) is not None
                    else -1,
                    mesh.classification(Ent(0, idx)).tag
                    if mesh.classification(Ent(0, idx)) is not None
                    else -1,
                )
                for idx in vert_map
            ],
            dtype=np.int64,
        ).reshape(-1, 2)
        np.savez_compressed(
            path / f"part{part.pid}.npz",
            coords=coords,
            conn=conn,
            vgids=vgids,
            egids=egids,
            vclass=vclass,
            etype=np.asarray(etypes or [-1], dtype=np.int64),
        )
    (path / _MANIFEST).write_text(json.dumps(manifest))
    return path


def load_dmesh(
    path: Union[str, Path],
    model: Optional[Model] = None,
    topology: Optional[MachineTopology] = None,
    counters: Optional[PerfCounters] = None,
) -> DistributedMesh:
    """Restore a distribution written by :func:`save_dmesh`.

    Pass the original geometric ``model`` to restore classification (the
    model itself is code, not data, so it is not serialized).
    """
    path = Path(path)
    manifest = json.loads((path / _MANIFEST).read_text())
    dmesh = DistributedMesh(
        manifest["nparts"], model=model, topology=topology, counters=counters
    )
    dmesh._gid_next = list(manifest["gid_next"])
    dim = manifest["element_dim"]

    for pid in range(dmesh.nparts):
        data = np.load(path / f"part{pid}.npz")
        part = dmesh.part(pid)
        etype = int(data["etype"][0])
        if etype < 0 or len(data["conn"]) == 0:
            continue  # empty part
        mesh = from_connectivity(data["coords"], data["conn"], etype)
        mesh.model = model
        part.mesh = mesh
        for idx, gid in enumerate(data["vgids"]):
            part.set_gid(Ent(0, idx), int(gid))
        for local, gid in enumerate(data["egids"]):
            part.set_gid(Ent(dim, local), int(gid))
        if model is not None:
            from ..gmodel.model import ModelEntity

            for idx, (gdim, gtag) in enumerate(data["vclass"]):
                if gdim >= 0:
                    mesh.set_classification(
                        Ent(0, idx), ModelEntity(int(gdim), int(gtag))
                    )
            # Re-derive higher-entity classification from the vertices
            # (each element's closure covers every edge and face).
            for element in mesh.entities(mesh.dim()):
                mesh.classify_closure_missing(element)
    rebuild_links(dmesh)
    return dmesh
