"""Distributed-mesh checkpointing (``repro.dmesh/2`` format).

Long adaptive simulations checkpoint the partitioned mesh so a run can
restart without re-partitioning (PUMI's SMB file-per-part format).  This
module snapshots a :class:`~repro.partition.dmesh.DistributedMesh` into a
directory — one ``.npz`` per part holding coordinates, connectivity, vertex
gids, vertex classification, mesh tags and (optionally) distributed-field
values, plus a hashed manifest — and restores it with all remote-copy links
rebuilt from the vertex gids (the same rendezvous used after migration, so
a reloaded mesh is verified-identical in structure).

Format ``repro.dmesh/2`` closes the v1 "tags, fields and ghosts are runtime
state and are not checkpointed" gap:

* **tags** round-trip automatically, keyed by entity identity (sorted
  vertex-gid tuples), so they survive restores at a different part count;
* **field values** round-trip when the fields are passed to
  :func:`save_dmesh` and recovered with :func:`load_checkpoint`;
* **ghosts** are excluded from the snapshot (they are reconstructible —
  re-run :func:`~repro.partition.ghosting.ghost_layer`; the
  :class:`~repro.resilience.CheckpointManager` records the ghost
  configuration in the manifest and re-applies it on restore).

Tag and field blobs are stored in the :mod:`repro.parallel.codec` binary
format (blobs from older checkpoints, which used raw pickle, are sniffed by
magic and still load).  Durability: every file is written atomically
(``*.tmp`` + fsync + rename), the manifest carries a SHA-256 per part file,
and any integrity violation surfaces as a typed
:class:`CorruptCheckpointError` instead of a cold
``KeyError``/``BadZipFile``.  Restoring onto a *different* part count is
supported via ``load_dmesh(path, nparts=K)``: elements are regrouped into
contiguous global-id blocks and the remote-copy links rebuilt through the
migration rendezvous.
"""

from __future__ import annotations

import hashlib
import io as _io
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..gmodel.model import Model
from ..mesh.build import from_connectivity
from ..mesh.entity import Ent
from ..parallel import codec
from ..parallel.perf import PerfCounters
from ..parallel.topology import MachineTopology
from .dmesh import DistributedMesh
from .fieldsync import DistributedField
from .migration import entity_key, rebuild_links
from .part import Part

_MANIFEST = "manifest.json"
#: Current checkpoint format id, stored in every manifest.
FORMAT = "repro.dmesh/2"


class CorruptCheckpointError(RuntimeError):
    """A checkpoint failed integrity validation (hash, schema, or parse)."""


# ---------------------------------------------------------------------------
# atomic file primitives
# ---------------------------------------------------------------------------


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: tmp file, fsync, rename."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _encode_blob(obj: Any) -> np.ndarray:
    """Codec-encoded object as a uint8 array for npz storage."""
    return np.frombuffer(codec.dumps(obj), dtype=np.uint8)


def _decode_blob(arr: np.ndarray) -> Any:
    """Decode a stored blob; pre-codec checkpoints used raw pickle."""
    data = arr.tobytes()
    if data[: len(codec.MAGIC)] == codec.MAGIC:
        return codec.loads(data)
    return pickle.loads(data)


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------


def _part_tags(part: Part) -> List[Tuple[str, List[Tuple[int, Tuple[int, ...], Any]]]]:
    """Tag data of one part as ``[(name, [(dim, key, value), ...]), ...]``.

    Entities are identified by :func:`~repro.partition.migration.entity_key`
    (sorted vertex-gid tuples), which survives both the local-index
    relabeling of a reload and restores at a different part count.  Ghost
    entities' values are runtime state and are skipped.
    """
    out = []
    for name in part.mesh.tags.names():
        tag = part.mesh.tags.find(name)
        entries = []
        for ent, value in tag.items():
            if ent in part.ghosts:
                continue
            entries.append((ent.dim, entity_key(part, ent), value))
        out.append((name, entries))
    return out


def _part_fields(
    part: Part, fields: Sequence[DistributedField]
) -> Dict[str, List[Tuple[Tuple[int, ...], np.ndarray]]]:
    """Field values of one part keyed by entity identity."""
    out: Dict[str, List[Tuple[Tuple[int, ...], np.ndarray]]] = {}
    for dfield in fields:
        local = dfield.on(part.pid)
        entries = []
        for ent, value in local.items():
            if ent in part.ghosts:
                continue
            entries.append((entity_key(part, ent), np.asarray(value)))
        out[dfield.name] = entries
    return out


def save_dmesh(
    dmesh: DistributedMesh,
    path: Union[str, Path],
    fields: Sequence[DistributedField] = (),
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the distribution to ``path`` (a directory, created if needed).

    Mesh tags ride along automatically; pass ``fields`` to include
    distributed-field values.  Ghost entities are excluded (re-create them
    with :func:`~repro.partition.ghosting.ghost_layer` after restore).
    ``extra`` is embedded verbatim in the manifest (the checkpoint manager
    stores the step number and ghost configuration there).

    Every file is written atomically and the manifest records a SHA-256 per
    part file, validated on load.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    dim = dmesh.element_dim()
    manifest: Dict[str, Any] = {
        "format": FORMAT,
        "nparts": dmesh.nparts,
        "element_dim": dim,
        "gid_next": list(dmesh._gid_next),
        "has_model": dmesh.model is not None,
        "ghosted": any(part.ghosts for part in dmesh),
        "fields": [
            {
                "name": f.name,
                "entity_dim": f.entity_dim,
                "shape": list(next(iter(f.fields.values())).shape),
            }
            for f in fields
        ],
        "files": {},
    }
    for part in dmesh:
        mesh = part.mesh
        store = mesh._stores[dim]
        elements = [
            i for i in store.indices() if Ent(dim, i) not in part.ghosts
        ]
        vert_ids = [
            i for i in mesh._stores[0].indices()
            if Ent(0, i) not in part.ghosts
        ]
        vert_map = {idx: pos for pos, idx in enumerate(vert_ids)}
        etypes = sorted({store.etype(i) for i in elements})
        if len(etypes) > 1:
            raise ValueError(
                "checkpointing supports single-element-type parts"
            )
        coords = (
            mesh.coords_view()[vert_ids] if vert_ids else np.zeros((0, 3))
        )
        conn = (
            np.asarray(
                [[vert_map[v] for v in store.verts(i)] for i in elements],
                dtype=np.int64,
            )
            if elements
            else np.zeros((0, 1), dtype=np.int64)
        )
        vgids = np.asarray(
            [part.gid(Ent(0, idx)) for idx in vert_ids], dtype=np.int64
        )
        egids = np.asarray(
            [part.gid(Ent(dim, i)) for i in elements], dtype=np.int64
        )
        vclass = np.asarray(
            [
                (
                    mesh.classification(Ent(0, idx)).dim
                    if mesh.classification(Ent(0, idx)) is not None
                    else -1,
                    mesh.classification(Ent(0, idx)).tag
                    if mesh.classification(Ent(0, idx)) is not None
                    else -1,
                )
                for idx in vert_ids
            ],
            dtype=np.int64,
        ).reshape(-1, 2)
        buffer = _io.BytesIO()
        np.savez_compressed(
            buffer,
            coords=coords,
            conn=conn,
            vgids=vgids,
            egids=egids,
            vclass=vclass,
            etype=np.asarray(etypes or [-1], dtype=np.int64),
            tag_blob=_encode_blob(_part_tags(part)),
            field_blob=_encode_blob(_part_fields(part, fields)),
        )
        data = buffer.getvalue()
        name = f"part{part.pid}.npz"
        manifest["files"][name] = _sha256(data)
        _atomic_write_bytes(path / name, data)
    if extra:
        manifest["extra"] = extra
    _atomic_write_bytes(
        path / _MANIFEST,
        json.dumps(manifest, indent=1, sort_keys=True).encode(),
    )
    return path


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------


def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and schema-check a checkpoint manifest.

    Raises :class:`CorruptCheckpointError` on a missing file, invalid JSON,
    or an unknown format id.
    """
    path = Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise CorruptCheckpointError(f"{manifest_path}: missing manifest")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CorruptCheckpointError(
            f"{manifest_path}: unreadable manifest: {exc}"
        ) from None
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT:
        raise CorruptCheckpointError(
            f"{manifest_path}: unsupported checkpoint format "
            f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r} "
            f"(expected {FORMAT!r})"
        )
    for key in ("nparts", "element_dim", "gid_next", "files"):
        if key not in manifest:
            raise CorruptCheckpointError(
                f"{manifest_path}: manifest misses {key!r}"
            )
    return manifest


def _load_part_file(path: Path, name: str, expected_sha: str):
    """Read, hash-validate and parse one part file."""
    file_path = path / name
    if not file_path.is_file():
        raise CorruptCheckpointError(f"{path}: missing part file {name}")
    data = file_path.read_bytes()
    actual = _sha256(data)
    if actual != expected_sha:
        # Full hashes: operators diff these against mirror copies and
        # backup manifests, so truncation costs real debugging time.
        raise CorruptCheckpointError(
            f"{file_path}: integrity failure: "
            f"sha256 {actual} != manifest {expected_sha}"
        )
    try:
        return np.load(_io.BytesIO(data), allow_pickle=True)
    except Exception as exc:  # zipfile.BadZipFile, pickle errors, ...
        raise CorruptCheckpointError(
            f"{path}: unparseable part file {name}: {exc}"
        ) from None


def _key_index(part: Part, dims: Sequence[int]) -> Dict[Tuple[int, Tuple[int, ...]], Ent]:
    """Map ``(dim, entity key)`` -> local entity for the requested dims."""
    index: Dict[Tuple[int, Tuple[int, ...]], Ent] = {}
    for d in dims:
        for ent in part.mesh.entities(d):
            index[(d, entity_key(part, ent))] = ent
    return index


def _apply_tags(part: Part, tags_data, index) -> None:
    for name, entries in tags_data:
        tag = part.mesh.tags.create(name)
        for d, key, value in entries:
            ent = index.get((d, tuple(key)))
            if ent is not None:
                tag[ent] = value


def load_checkpoint(
    path: Union[str, Path],
    model: Optional[Model] = None,
    topology: Optional[MachineTopology] = None,
    counters: Optional[PerfCounters] = None,
    nparts: Optional[int] = None,
) -> Tuple[DistributedMesh, Dict[str, DistributedField], Dict[str, Any]]:
    """Full-fidelity restore: mesh + tags + fields + manifest.

    Returns ``(dmesh, fields_by_name, manifest)``.  ``nparts`` restores the
    snapshot onto a different part count (see :func:`load_dmesh`).
    """
    path = Path(path)
    manifest = read_manifest(path)
    saved_nparts = int(manifest["nparts"])
    target = saved_nparts if nparts is None else int(nparts)
    if target < 1:
        raise ValueError(f"need at least one part, got {target}")
    parts_data = [
        _load_part_file(path, f"part{pid}.npz", manifest["files"].get(
            f"part{pid}.npz", ""
        ))
        for pid in range(saved_nparts)
    ]
    try:
        if target == saved_nparts:
            dmesh = _restore_same_parts(
                manifest, parts_data, model, topology, counters
            )
        else:
            dmesh = _restore_regrouped(
                manifest, parts_data, target, model, topology, counters
            )
        fields = _restore_fields(dmesh, manifest, parts_data)
    except CorruptCheckpointError:
        raise
    except (KeyError, ValueError, IndexError, pickle.UnpicklingError) as exc:
        raise CorruptCheckpointError(
            f"{path}: inconsistent checkpoint contents: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    return dmesh, fields, manifest


def load_dmesh(
    path: Union[str, Path],
    model: Optional[Model] = None,
    topology: Optional[MachineTopology] = None,
    counters: Optional[PerfCounters] = None,
    nparts: Optional[int] = None,
) -> DistributedMesh:
    """Restore a distribution written by :func:`save_dmesh`.

    Pass the original geometric ``model`` to restore classification (the
    model itself is code, not data, so it is not serialized).  ``nparts``
    restores onto a different part count: elements are regrouped into
    contiguous global-id blocks across the new parts and all remote-copy
    links are rebuilt through the migration rendezvous, so a checkpoint
    written at 8 parts restarts cleanly at 4 or 16.

    Use :func:`load_checkpoint` to also recover saved field values.
    """
    dmesh, _fields, _manifest = load_checkpoint(
        path, model=model, topology=topology, counters=counters, nparts=nparts
    )
    return dmesh


def _restore_intermediate_gids(dmesh: DistributedMesh) -> None:
    """Give every intermediate entity (0 < d < element dim) a global id.

    The checkpoint persists gids only for vertices and elements; edges (and
    faces, in 3D) are re-derived from connectivity.  Distributed services
    assume *every* entity carries a gid — ghosting, for one, detects the
    entities an element bundle created by diffing the gid table — so
    restore must re-establish that invariant.  Gids are assigned from the
    sorted vertex-gid keys: the same shared entity gets the same gid on
    every holding part, distinct entities get distinct gids, and the result
    is independent of part count and local numbering.
    """
    dim = dmesh.element_dim()
    for d in range(1, dim):
        keys = set()
        for part in dmesh:
            gid0 = part.gid_array(0)
            for ent in part.mesh.entities(d):
                keys.add(
                    tuple(sorted(gid0[v.idx] for v in part.mesh.verts_of(ent)))
                )
        base = dmesh._gid_next[d]
        gid_of = {key: base + i for i, key in enumerate(sorted(keys))}
        for part in dmesh:
            gid0 = part.gid_array(0)
            for ent in part.mesh.entities(d):
                if not part.has_gid(ent):
                    key = tuple(
                        sorted(gid0[v.idx] for v in part.mesh.verts_of(ent))
                    )
                    part.set_gid(ent, gid_of[key])
        dmesh._gid_next[d] = base + len(keys)


def _restore_same_parts(
    manifest, parts_data, model, topology, counters
) -> DistributedMesh:
    """The v1 path: rebuild each saved part verbatim."""
    dmesh = DistributedMesh(
        int(manifest["nparts"]),
        model=model,
        topology=topology,
        counters=counters,
    )
    dmesh._gid_next = list(manifest["gid_next"])
    dim = int(manifest["element_dim"])

    for pid in range(dmesh.nparts):
        data = parts_data[pid]
        part = dmesh.part(pid)
        etype = int(data["etype"][0])
        if etype < 0 or len(data["conn"]) == 0:
            continue  # empty part
        mesh = from_connectivity(data["coords"], data["conn"], etype)
        mesh.model = model
        part.mesh = mesh
        for idx, gid in enumerate(data["vgids"]):
            part.set_gid(Ent(0, idx), int(gid))
        for local, gid in enumerate(data["egids"]):
            part.set_gid(Ent(dim, local), int(gid))
        if model is not None:
            from ..gmodel.model import ModelEntity

            for idx, (gdim, gtag) in enumerate(data["vclass"]):
                if gdim >= 0:
                    mesh.set_classification(
                        Ent(0, idx), ModelEntity(int(gdim), int(gtag))
                    )
            # Re-derive higher-entity classification from the vertices
            # (each element's closure covers every edge and face).
            for element in mesh.entities(mesh.dim()):
                mesh.classify_closure_missing(element)
        tags_data = _decode_blob(data["tag_blob"])
        if tags_data:
            dims = sorted({d for _n, entries in tags_data for d, _k, _v in entries})
            _apply_tags(part, tags_data, _key_index(part, dims))
    _restore_intermediate_gids(dmesh)
    rebuild_links(dmesh)
    return dmesh


def _restore_regrouped(
    manifest, parts_data, target, model, topology, counters
) -> DistributedMesh:
    """Restore onto ``target`` parts: contiguous gid blocks + rendezvous.

    Element records from every saved part are merged, sorted by global id,
    and dealt to the new parts in contiguous blocks (element ``j`` of ``M``
    goes to part ``j * target // M``); each new part's serial mesh is built
    from its block's closure and the remote-copy links are recomputed by
    the same rendezvous migration uses.  Tags are re-attached afterwards by
    entity identity (see :func:`load_checkpoint` for fields).
    """
    dim = int(manifest["element_dim"])
    # Merge saved parts into global element / vertex records.
    vert_coords: Dict[int, np.ndarray] = {}
    vert_class: Dict[int, Tuple[int, int]] = {}
    elements: Dict[int, Tuple[int, ...]] = {}  # egid -> vertex gid row
    etype: Optional[int] = None
    for data in parts_data:
        part_etype = int(data["etype"][0])
        if part_etype < 0 or len(data["conn"]) == 0:
            continue
        if etype is None:
            etype = part_etype
        elif etype != part_etype:
            raise ValueError(
                "restore at a different part count needs a single element "
                f"type, found both {etype} and {part_etype}"
            )
        vgids = data["vgids"]
        coords = data["coords"]
        vclass = data["vclass"]
        for row, gid in enumerate(vgids):
            gid = int(gid)
            if gid not in vert_coords:
                vert_coords[gid] = coords[row]
                vert_class[gid] = (int(vclass[row][0]), int(vclass[row][1]))
        for row, egid in enumerate(data["egids"]):
            elements[int(egid)] = tuple(
                int(vgids[v]) for v in data["conn"][row]
            )

    dmesh = DistributedMesh(
        target, model=model, topology=topology, counters=counters
    )
    dmesh._gid_next = list(manifest["gid_next"])
    ordered = sorted(elements)
    total = len(ordered)
    if total and etype is not None:
        from ..gmodel.model import ModelEntity

        for pid in range(target):
            block = [
                egid for j, egid in enumerate(ordered)
                if j * target // total == pid
            ]
            if not block:
                continue
            part = dmesh.part(pid)
            local_of: Dict[int, int] = {}
            conn_rows: List[List[int]] = []
            for egid in block:
                row = []
                for vgid in elements[egid]:
                    local = local_of.get(vgid)
                    if local is None:
                        local = local_of[vgid] = len(local_of)
                    row.append(local)
                conn_rows.append(row)
            vgid_list = list(local_of)
            coords = np.asarray([vert_coords[g] for g in vgid_list])
            mesh = from_connectivity(
                coords, np.asarray(conn_rows, dtype=np.int64), etype
            )
            mesh.model = model
            part.mesh = mesh
            for local, vgid in enumerate(vgid_list):
                part.set_gid(Ent(0, local), vgid)
            for local, egid in enumerate(block):
                part.set_gid(Ent(dim, local), egid)
            if model is not None:
                for local, vgid in enumerate(vgid_list):
                    gdim, gtag = vert_class[vgid]
                    if gdim >= 0:
                        mesh.set_classification(
                            Ent(0, local), ModelEntity(gdim, gtag)
                        )
                for element in mesh.entities(mesh.dim()):
                    mesh.classify_closure_missing(element)
    _restore_intermediate_gids(dmesh)
    rebuild_links(dmesh)

    # Tags: first saved part wins on shared entities (deterministic).
    merged: Dict[str, Dict[Tuple[int, Tuple[int, ...]], Any]] = {}
    for data in parts_data:
        for name, entries in _decode_blob(data["tag_blob"]):
            bucket = merged.setdefault(name, {})
            for d, key, value in entries:
                bucket.setdefault((d, tuple(key)), value)
    if merged:
        dims = sorted({d for bucket in merged.values() for d, _k in bucket})
        for part in dmesh:
            index = _key_index(part, dims)
            for name, bucket in sorted(merged.items()):
                tag = part.mesh.tags.create(name)
                for (d, key), value in bucket.items():
                    ent = index.get((d, key))
                    if ent is not None:
                        tag[ent] = value
    return dmesh


def _restore_fields(
    dmesh: DistributedMesh, manifest, parts_data
) -> Dict[str, DistributedField]:
    """Re-create saved distributed fields on the restored mesh.

    Values are re-attached by entity identity; on shared entities the
    lowest saved part's value wins (deterministic, and identical for any
    synchronized field).
    """
    metas = manifest.get("fields", [])
    if not metas:
        return {}
    merged: Dict[str, Dict[Tuple[int, ...], np.ndarray]] = {}
    for data in parts_data:
        for name, entries in _decode_blob(data["field_blob"]).items():
            bucket = merged.setdefault(name, {})
            for key, value in entries:
                bucket.setdefault(tuple(key), value)
    fields: Dict[str, DistributedField] = {}
    for meta in metas:
        name = meta["name"]
        entity_dim = int(meta["entity_dim"])
        bucket = merged.get(name, {})
        shape = tuple(meta.get("shape", [1]))
        dfield = DistributedField(dmesh, name, entity_dim, shape)
        for part in dmesh:
            index = _key_index(part, [entity_dim])
            local = dfield.on(part.pid)
            for key, value in bucket.items():
                ent = index.get((entity_dim, key))
                if ent is not None:
                    local.set(ent, value)
        fields[name] = dfield
    return fields
