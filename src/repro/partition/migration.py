"""Mesh migration: moving elements between parts.

"Mesh migration: a procedure that moves mesh entities from part to part to
support (i) mesh distribution to parts, (ii) mesh load balancing, or (iii)
obtaining mesh entities needed for mesh modification operations" (paper,
Section II-C).  ParMA's diffusion is implemented entirely on top of this
operation.

:func:`migrate` executes a migration plan in four bulk-synchronous phases:

1. **pack** — each source part packages every migrated element's
   downward closure (vertices with coordinates, intermediate entities, the
   element itself, all with global ids, types and geometric classification)
   and registers the destination as a leaf of a
   :class:`~repro.parallel.sf.StarForest` rooted at the element;
2. **unpack** — one forest ``bcast`` ships the bundles (coalesced per part
   pair by the element-batch codec) and destinations find-or-create the
   received entities, matching vertices by global id and higher entities by
   local vertices, so entities arriving from several sources (or already
   present on the part boundary) are created exactly once;
3. **remove** — sources destroy the moved elements and any boundary entities
   left bounding nothing (their copies may live on, on other parts);
4. **relink** — remote-copy links are rebuilt from scratch by a rendezvous
   over each part's surface entities (:func:`rebuild_links`), restoring the
   symmetric partition-boundary structure the partition model derives from.

The rebuild-from-scratch choice trades some traffic for simplicity and is
what keeps this implementation verifiably correct under arbitrary plans;
PUMI's incremental update is an optimization of the same result.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..mesh.entity import Ent
from ..mesh.topology import type_info
from ..obs.stats import CommProbe, MigrateStats
from ..obs.tracer import trace_span
from ..parallel.codec import decode_int_rows, encode_int_rows
from ..parallel.sf import BUNDLES, StarForest
from .dmesh import DistributedMesh
from .part import Part

#: A migration plan: for each source part, the elements it sends away.
MigrationPlan = Dict[int, Dict[Ent, int]]

_TAG_CANDIDATE = 2
_TAG_LINKS = 3


def migrate(dmesh: DistributedMesh, plan: MigrationPlan) -> MigrateStats:
    """Execute a migration plan; returns a :class:`MigrateStats` record.

    Requirements: no ghosts anywhere (delete them first — ghost copies do
    not survive repartitioning), every planned element alive and of the
    mesh's element dimension.

    The stats carry the elements moved (``stats.elements_moved``), the
    closure entities packed per dimension, and the communication cost of
    the whole operation (pack/send, unpack, remove, relink) measured from
    the mesh's counter registry.
    """
    for part in dmesh:
        if part.ghosts:
            raise ValueError(
                f"part {part.pid} has ghosts; delete ghosts before migrating"
            )
    probe = CommProbe(dmesh.counters)
    tracer = dmesh.tracer
    dim = dmesh.element_dim()
    moved = 0
    packed = [0, 0, 0, 0]

    with trace_span(tracer, "migrate"):
        outgoing: List[Tuple[int, Ent, int]] = []
        bundles: Dict[Tuple[int, Ent], dict] = {}
        forest = StarForest(dmesh, name="migrate")
        with trace_span(tracer, "migrate.pack"):
            # Leaf handles are per-(source, dest) ordinals minted in sorted
            # element order, which pins the exact bundle layout of each
            # coalesced wire buffer (element batches intern by first use).
            ordinals: Dict[Tuple[int, int], int] = {}
            for pid in sorted(plan):
                part = dmesh.part(pid)
                for element in sorted(plan[pid]):
                    dest = plan[pid][element]
                    if dest == pid:
                        continue
                    if not 0 <= dest < dmesh.nparts:
                        raise ValueError(
                            f"migration destination {dest} out of range"
                        )
                    if element.dim != dim or not part.mesh.has(element):
                        raise ValueError(
                            f"part {pid}: {element} is not a live element"
                        )
                    bundle = _pack_element(part, element)
                    packed[0] += len(bundle["verts"])
                    for mid in bundle["mids"]:
                        packed[mid[0]] += 1
                    packed[dim] += 1
                    bundles[(pid, element)] = bundle
                    ordinal = ordinals.get((pid, dest), 0)
                    ordinals[(pid, dest)] = ordinal + 1
                    forest.add_leaf(dest, (pid, ordinal), pid, element)
                    outgoing.append((pid, element, dest))
                    moved += 1

        # Only parts that send/receive elements — plus every part that
        # shares anything with them — can see their links change.  The
        # neighbor sets must be snapshotted NOW, before removal drops the
        # dying links.
        affected = set()
        for pid, _element, dest in outgoing:
            affected.add(pid)
            affected.add(dest)
        for pid in list(affected):
            affected.update(dmesh.part(pid).neighbors())

        with trace_span(tracer, "migrate.unpack"):
            forest.bcast(
                lambda rpid, element: bundles[(rpid, element)],
                batch_set=lambda lpid, rpid, items: _unpack_batch(
                    dmesh.part(lpid), [b for _handle, b in items]
                ),
                datatype=BUNDLES,
            )

        with trace_span(tracer, "migrate.remove"):
            for pid, element, _dest in outgoing:
                _remove_element(dmesh.part(pid), element)

        with trace_span(tracer, "migrate.relink"):
            rebuild_links(dmesh, only_parts=affected if outgoing else [])
    dmesh.counters.add("migration.elements", moved)
    return MigrateStats(
        elements_moved=moved,
        per_dimension=tuple(packed),
        sf_ops=1,
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
        encoded_bytes=probe.encoded_bytes(),
        messages_coalesced=probe.messages_coalesced(),
    )


def _pack_element(part: Part, element: Ent) -> dict:
    """Closure bundle of one element, self-contained for reconstruction."""
    mesh = part.mesh
    verts = []
    for v in mesh.adjacent(element, 0):
        gent = mesh.classification(v)
        verts.append(
            (
                part.gid(v),
                tuple(mesh.coords(v)),
                (gent.dim, gent.tag) if gent is not None else None,
            )
        )
    mids = []
    for d in range(1, element.dim):
        for ent in mesh.adjacent(element, d):
            gent = mesh.classification(ent)
            mids.append(
                (
                    d,
                    part.gid(ent) if part.has_gid(ent) else None,
                    mesh.etype(ent),
                    tuple(part.gid(v) for v in mesh.verts_of(ent)),
                    (gent.dim, gent.tag) if gent is not None else None,
                )
            )
    gent = mesh.classification(element)
    return {
        "verts": verts,
        "mids": mids,
        "element": (
            element.dim,
            part.gid(element),
            mesh.etype(element),
            tuple(part.gid(v) for v in mesh.verts_of(element)),
            (gent.dim, gent.tag) if gent is not None else None,
        ),
    }


def _model_entity(part: Part, ref):
    if ref is None:
        return None
    from ..gmodel.model import ModelEntity

    return ModelEntity(ref[0], ref[1])


def _ensure_entity(part: Part, d: int, gid, etype: int, vert_gids,
                   gclass) -> Ent:
    """Find-or-create one non-vertex entity from its bundle row."""
    mesh = part.mesh
    local_verts = []
    for vg in vert_gids:
        lv = part.by_gid(0, vg)
        assert lv is not None, f"bundle vertex gid {vg} missing"
        local_verts.append(lv)
    existing = mesh.find(d, local_verts)
    if existing is not None:
        # Identity is the vertex-gid tuple (already matched by find);
        # intermediate-entity gids are advisory bookkeeping, so adopt
        # the bundle's gid only when the local entity lacks one and the
        # gid is still free.
        if (
            gid is not None
            and not part.has_gid(existing)
            and part.by_gid(d, gid) is None
        ):
            part.set_gid(existing, gid)
        return existing
    created = mesh.create(etype, local_verts, _model_entity(part, gclass))
    if gid is not None and part.by_gid(d, gid) is None:
        part.set_gid(created, gid)
    return created


def _unpack_element(part: Part, bundle: dict) -> Ent:
    """Find-or-create the bundle's entities on the destination part."""
    mesh = part.mesh
    for gid, coords, gclass in bundle["verts"]:
        existing = part.by_gid(0, gid)
        if existing is None:
            v = mesh.create_vertex(coords, _model_entity(part, gclass))
            part.set_gid(v, gid)
        # else: the vertex is already on this part (boundary copy).
    for d, gid, etype, vert_gids, gclass in sorted(
        bundle["mids"], key=lambda m: (m[0], m[3])
    ):
        _ensure_entity(part, d, gid, etype, vert_gids, gclass)
    d, gid, etype, vert_gids, gclass = bundle["element"]
    return _ensure_entity(part, d, gid, etype, vert_gids, gclass)


def _unpack_batch(part: Part, bundles) -> List[Ent]:
    """Apply one decoded element batch; returns the elements, bundle order.

    Decoded batches intern shared closure rows (the codec ships each unique
    vertex/edge/face once per buffer), so this path finds-or-creates each
    unique row once per batch instead of once per element bundle — the
    find/create surgery dominates unpack cost, and neighboring elements
    migrated together share most of their closure.
    """
    mesh = part.mesh
    seen_gids = set()
    for bundle in bundles:
        for gid, coords, gclass in bundle["verts"]:
            if gid in seen_gids:
                continue
            seen_gids.add(gid)
            if part.by_gid(0, gid) is None:
                v = mesh.create_vertex(coords, _model_entity(part, gclass))
                part.set_gid(v, gid)
    seen_rows = set()
    mids = []
    for bundle in bundles:
        for row in bundle["mids"]:
            if row not in seen_rows:
                seen_rows.add(row)
                mids.append(row)
    mids.sort(key=lambda m: (m[0], m[3]))
    for d, gid, etype, vert_gids, gclass in mids:
        _ensure_entity(part, d, gid, etype, vert_gids, gclass)
    return [
        _ensure_entity(part, *bundle["element"]) for bundle in bundles
    ]


def _remove_element(part: Part, element: Ent) -> None:
    """Destroy a migrated element and now-unused boundary entities."""
    mesh = part.mesh
    closure: List[Ent] = []
    for d in range(element.dim - 1, -1, -1):
        closure.extend(mesh.adjacent(element, d))

    _drop_bookkeeping(part, element)
    mesh.destroy(element)
    for ent in closure:  # dims descending by construction
        if mesh.has(ent) and not mesh.up(ent):
            _drop_bookkeeping(part, ent)
            mesh.destroy(ent)


def _drop_bookkeeping(part: Part, ent: Ent) -> None:
    part.drop_gid(ent)
    part.remotes.pop(ent, None)
    part.ghosts.discard(ent)
    part.ghost_home.pop(ent, None)


def surface_closure(part: Part) -> List[Ent]:
    """All entities on the part's topological surface (any dimension < D).

    An entity shared with another part necessarily lies on this part's
    surface, so this is a complete (and cheap) candidate set for remote-link
    discovery.  The surface consists of the facets (dimension D-1 entities)
    with exactly one upward element, plus their closures.
    """
    mesh = part.mesh
    dim = mesh.dim()
    if dim == 0:
        return list(mesh.entities(0))
    result: List[Ent] = []
    seen = set()
    for facet in mesh.entities(dim - 1):
        if len(mesh.up(facet)) != 1:
            continue
        for ent in [facet] + [
            e for d in range(facet.dim - 1, -1, -1)
            for e in mesh.adjacent(facet, d)
        ]:
            if ent not in seen:
                seen.add(ent)
                result.append(ent)
    return result


def entity_key(part: Part, ent: Ent) -> Tuple[int, ...]:
    """Global identity of an entity: its sorted bounding-vertex gids.

    Vertices carry authoritative gids; every higher entity is identified by
    the gids of its vertices, so entities created independently on several
    parts (e.g. by coordinated refinement of a shared edge) match without
    any global id coordination.
    """
    if ent.dim == 0:
        return (part.gid(ent),)
    return tuple(
        sorted(part.gid(v) for v in part.mesh.verts_of(ent))
    )


def _surface_entity_ids(part: Part) -> List[Tuple[int, int, Tuple[int, ...]]]:
    """Fast raw-id surface scan: ``(dim, idx, sorted vertex-gid key)``.

    Equivalent to :func:`surface_closure` + :func:`entity_key`, written
    against the entity stores directly — this runs once per part per
    migration and dominates the link-rebuild cost.
    """
    mesh = part.mesh
    dim = mesh.dim()
    if dim == 0:
        return []
    core = mesh.core
    fdim = dim - 1
    facets = core.live_ids(fdim)
    surf = facets[core.nup[fdim][facets] == 1]
    gid0 = part.gid_array(0).tolist()
    out: List[Tuple[int, int, Tuple[int, ...]]] = []
    seen = [set() for _ in range(dim)]
    ghost_idx = [
        {g.idx for g in part.ghosts if g.dim == d} for d in range(dim)
    ]
    # Bulk row extraction: one tolist per array instead of per-entity calls.
    surf_list = surf.tolist()
    fvert_counts = core.nverts[fdim][surf].tolist()
    fvert_rows = core.verts[fdim][surf].tolist()
    if fdim == 2:
        fdown_counts = core.ndown[2][surf].tolist()
        fdown_rows = core.down[2][surf].tolist()
        edge_verts = core.verts[1][: core.top[1], :2].tolist()

    def emit(d: int, idx: int, verts) -> None:
        if idx in seen[d] or idx in ghost_idx[d]:
            return
        seen[d].add(idx)
        key = tuple(sorted(gid0[v] for v in verts))
        out.append((d, idx, key))

    for i, fidx in enumerate(surf_list):
        fverts = fvert_rows[i][: fvert_counts[i]]
        emit(fdim, fidx, fverts)
        if fdim >= 1:
            for v in fverts:
                emit(0, v, (v,))
        if fdim == 2:
            for eidx in fdown_rows[i][: fdown_counts[i]]:
                emit(1, eidx, edge_verts[eidx])
    return out


def rebuild_links(
    dmesh: DistributedMesh, only_parts: Optional[Iterable[int]] = None
) -> None:
    """Recompute remote-copy links from vertex global ids.

    Rendezvous algorithm: each participating part posts (dim, key, local
    handle) for all of its surface entities — where ``key`` is the sorted
    vertex-gid tuple — to the key's home part (sum of the key modulo
    nparts); home parts group arrivals and answer every holder of a
    multiply-held key with the full holder list.  Links of participating
    parts are then rewritten wholesale.  Payloads are pure integers —
    shipped as columnar int-row buffers under the binary codec, plain
    tuples under pickle — so the trusted (no-copy) channel carries them.

    ``only_parts`` restricts the rebuild to a set of parts that is *closed
    under sharing* — every part that might share an entity with a member
    must itself be a member (migration passes the moved parts plus all
    their neighbors, which has that property).  ``None`` rebuilds all.
    """
    nparts = dmesh.nparts
    binary = dmesh.codec == "binary"
    if only_parts is None:
        participants = list(range(nparts))
    else:
        participants = sorted(set(only_parts))
    router = dmesh.router(trusted=True)
    for pid in participants:
        part = dmesh.part(pid)
        batches: Dict[int, List[Tuple[int, Tuple[int, ...], int]]] = {}
        for d, idx, key in _surface_entity_ids(part):
            batches.setdefault(sum(key) % nparts, []).append((d, key, idx))
        for home, batch in batches.items():
            if binary:
                # Columnar int rows: (dim, local idx, *vertex-gid key).
                blob = encode_int_rows(
                    [(d, idx) + key for d, key, idx in batch]
                )
                dmesh.counters.add("net.bytes.encoded", len(blob))
                dmesh.counters.add("net.messages.coalesced", len(batch))
                router.post(part.pid, home, _TAG_CANDIDATE, blob)
            else:
                router.post(part.pid, home, _TAG_CANDIDATE, batch)

    inboxes = router.exchange()
    router = dmesh.router(trusted=True)
    for home in sorted(inboxes):
        groups: Dict[Tuple[int, Tuple[int, ...]], List[Tuple[int, int]]] = {}
        for src, _tag, batch in inboxes[home]:
            if isinstance(batch, (bytes, bytearray)):
                for row in decode_int_rows(batch):
                    groups.setdefault(
                        (row[0], row[2:]), []
                    ).append((src, row[1]))
            else:
                for d, key, idx in batch:
                    groups.setdefault((d, key), []).append((src, idx))
        answers: Dict[int, List[Tuple[int, int, List[Tuple[int, int]]]]] = {}
        for (d, _key), holders in sorted(groups.items()):
            if len(holders) < 2:
                continue
            for pid, idx in holders:
                others = [(q, j) for q, j in holders if q != pid]
                answers.setdefault(pid, []).append((d, idx, others))
        for pid, batch in answers.items():
            if binary:
                # Rows: (dim, local idx, holder pid/idx pairs flattened).
                blob = encode_int_rows(
                    [
                        (d, idx) + tuple(
                            value for pair in others for value in pair
                        )
                        for d, idx, others in batch
                    ]
                )
                dmesh.counters.add("net.bytes.encoded", len(blob))
                dmesh.counters.add("net.messages.coalesced", len(batch))
                router.post(home, pid, _TAG_LINKS, blob)
            else:
                router.post(home, pid, _TAG_LINKS, batch)

    responses = router.exchange()
    participant_set = set(participants)
    full_rebuild = len(participants) == nparts
    for pid in participants:
        part = dmesh.part(pid)
        if full_rebuild:
            part.remotes.clear()
            continue
        # Partial rebuild: recompute only links *among* participants; a
        # participant's links to outside parts cannot have changed (no
        # elements moved on either side of those boundaries) and outside
        # parts do not post, so their entries must be preserved.
        for ent in list(part.remotes):
            copies = part.remotes[ent]
            for q in [q for q in copies if q in participant_set]:
                del copies[q]
            if not copies:
                del part.remotes[ent]
    for pid in sorted(responses):
        part = dmesh.part(pid)
        for _src, _tag, batch in responses[pid]:
            if isinstance(batch, (bytes, bytearray)):
                for row in decode_int_rows(batch):
                    d, idx = row[0], row[1]
                    entry = part.remotes.setdefault(Ent(d, idx), {})
                    for i in range(2, len(row), 2):
                        entry[row[i]] = Ent(d, row[i + 1])
            else:
                for d, idx, others in batch:
                    entry = part.remotes.setdefault(Ent(d, idx), {})
                    for q, j in others:
                        entry[q] = Ent(d, j)
    dmesh.counters.add("migration.relinks")
