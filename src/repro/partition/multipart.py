"""Multiple parts per process and process-level views.

"Multiple part per process: a capability to dynamically change the number of
parts per process" (paper, Section II-C).  In this simulation a "process"
is a node of the machine topology; these helpers give the process-level view
(which parts share a node, aggregate loads per node) and the dynamic-part
operations the evaluation uses: creating an empty part and moving a set of
elements into it (the building block of local partitioning and ParMA heavy
part splitting).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..mesh.entity import Ent
from .dmesh import DistributedMesh
from .migration import migrate


def parts_per_node(dmesh: DistributedMesh) -> Dict[int, List[int]]:
    """Node id -> part ids hosted on that node (block mapping)."""
    result: Dict[int, List[int]] = {}
    for part in dmesh:
        node = dmesh.topology.node_of(part.pid)
        result.setdefault(node, []).append(part.pid)
    return result


def node_entity_counts(dmesh: DistributedMesh) -> np.ndarray:
    """Aggregate per-node entity counts, shape ``(nodes_in_use, 4)``.

    The process-level load view: with multiple parts per process the memory
    constraint is per process, not per part.
    """
    grouping = parts_per_node(dmesh)
    counts = dmesh.entity_counts()
    return np.asarray(
        [counts[pids].sum(axis=0) for _node, pids in sorted(grouping.items())]
    )


def spawn_empty_part(dmesh: DistributedMesh) -> int:
    """Add a new empty part; returns its id."""
    return dmesh.add_part().pid


def move_elements_to_new_part(
    dmesh: DistributedMesh, source_pid: int, elements: Iterable[Ent]
) -> int:
    """Create a new part and migrate ``elements`` from ``source_pid`` to it.

    Returns the new part id.  This is "splitting" a part in one step; ParMA
    heavy part splitting and local partitioning are built from it.
    """
    new_pid = spawn_empty_part(dmesh)
    plan = {source_pid: {ent: new_pid for ent in elements}}
    migrate(dmesh, plan)
    return new_pid


def merge_parts(dmesh: DistributedMesh, source_pid: int, target_pid: int) -> int:
    """Migrate every element of ``source_pid`` into ``target_pid``.

    The source part becomes empty (it is not removed: part ids are stable).
    Returns the number of elements moved.
    """
    if source_pid == target_pid:
        return 0
    part = dmesh.part(source_pid)
    dim = dmesh.element_dim()
    plan = {
        source_pid: {
            ent: target_pid
            for ent in part.mesh.entities(dim)
            if not part.is_ghost(ent)
        }
    }
    return migrate(dmesh, plan).elements_moved
