"""Distributed mesh adaptation: refinement and coarsening across parts.

PUMI's partition classification "enables ... various capabilities for
parallel unstructured mesh modification in an effective manner" (paper,
Section II-C) — the mesh must remain conforming *across* part boundaries
while every part modifies its piece.  This module provides the two
bulk-synchronous operations the adaptive workflows need:

* :func:`refine_distributed` — size-field refinement where part-boundary
  edges are split *coordinately*: the owning part decides the split,
  allocates the new vertex's global id, and instructs every residence part
  to perform the identical local split at the identical (snapped) location.
  Because every holder splits the same edge at the same point with the same
  vertex gid, the copies stay conforming, and the remote-link rebuild keyed
  on vertex gids re-discovers the new boundary entities.
* :func:`coarsen_distributed` — edge collapse restricted to edges whose
  *removed* vertex is part-interior (an interior vertex exists on exactly
  one part, so the collapse is purely local and cannot desynchronize the
  boundary).  Part-boundary coarsening would require cavity migration first
  (PUMI does exactly that); the restriction is documented and tested.

Both operations assign fresh element gids to all children so migration and
ghosting keep working on the adapted distributed mesh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..adapt.coarsen import collapse_edge
from ..adapt.refine import split_edge
from ..field.sizefield import SizeField, edge_size_ratio
from ..mesh.entity import Ent
from .dmesh import DistributedMesh
from .migration import rebuild_links
from .part import Part

_TAG_SPLIT = 31


@dataclass
class DistributedAdaptStats:
    """Outcome of one distributed adaptation run."""

    passes: int = 0
    interior_splits: int = 0
    boundary_splits: int = 0
    collapses: int = 0
    converged: bool = False

    @property
    def splits(self) -> int:
        return self.interior_splits + self.boundary_splits

    def summary(self) -> str:
        return (
            f"distributed adapt: {self.passes} pass(es), "
            f"{self.interior_splits} interior + {self.boundary_splits} "
            f"boundary splits, {self.collapses} collapses"
            + ("" if self.converged else " [pass budget reached]")
        )


def _fresh_element_gids(dmesh: DistributedMesh, part: Part) -> None:
    """Assign gids to any elements that lack one (children of splits)."""
    dim = dmesh.element_dim()
    for element in part.mesh.entities(dim):
        if not part.has_gid(element):
            part.set_gid(element, dmesh.alloc_gid(dim))


def _split_local(
    dmesh: DistributedMesh,
    part: Part,
    edge: Ent,
    point=None,
    vertex_gid: Optional[int] = None,
) -> Ent:
    """Split one edge on one part, maintaining gid bookkeeping."""
    mid = split_edge(part.mesh, edge, point=point, snap=(point is None))
    part.set_gid(
        mid, vertex_gid if vertex_gid is not None else dmesh.alloc_gid(0)
    )
    return mid


def _drop_dead_bookkeeping(part: Part) -> None:
    """Purge gid/remote entries whose entities modification destroyed."""
    for dim in range(4):
        for idx in sorted(part.gid_index_set(dim)):
            if not part.mesh.has(Ent(dim, idx)):
                part.drop_gid(Ent(dim, idx))
    for ent in [e for e in part.remotes if not part.mesh.has(e)]:
        del part.remotes[ent]


def refine_distributed(
    dmesh: DistributedMesh,
    size: SizeField,
    ratio: float = 1.5,
    max_passes: int = 6,
) -> DistributedAdaptStats:
    """Refine the distributed mesh until every edge fits the size field.

    Each pass: (1) every part splits its over-long *interior* edges
    locally; (2) owners of over-long *shared* edges broadcast split
    commands (midpoint, new vertex gid, classification is implied by the
    edge's own); (3) every residence part executes its commanded splits;
    (4) remote links are rebuilt.  Ghosts must be deleted first.
    """
    for part in dmesh:
        if part.ghosts:
            raise ValueError("delete ghosts before distributed refinement")
    stats = DistributedAdaptStats()
    dim = dmesh.element_dim()
    if dim < 2:
        raise ValueError("distributed refinement needs a 2D or 3D mesh")

    for _pass in range(max_passes):
        splits_this_pass = 0

        # Phase 1: interior edges, purely local (longest first).
        for part in dmesh:
            mesh = part.mesh
            over = []
            for edge in mesh.entities(1):
                if part.is_shared(edge):
                    continue
                r = edge_size_ratio(mesh, size, edge)
                if r > ratio:
                    over.append((r, edge))
            over.sort(key=lambda item: (-item[0], item[1]))
            for _r, edge in over:
                if not mesh.has(edge) or part.is_shared(edge):
                    continue
                if edge_size_ratio(mesh, size, edge) <= ratio:
                    continue
                _split_local(dmesh, part, edge)
                splits_this_pass += 1
                stats.interior_splits += 1

        # Phase 2: owners decide shared-edge splits and command all copies.
        router = dmesh.router()
        commands: Dict[int, List[Tuple[Ent, Tuple[float, ...], int]]] = {}
        for part in dmesh:
            mesh = part.mesh
            for edge in sorted(part.remotes):
                if edge.dim != 1 or not mesh.has(edge):
                    continue
                if not part.owns(edge):
                    continue
                if edge_size_ratio(mesh, size, edge) <= ratio:
                    continue
                a, b = mesh.verts_of(edge)
                midpoint = 0.5 * (mesh.coords(a) + mesh.coords(b))
                gclass = mesh.classification(edge)
                if gclass is not None and mesh.model is not None:
                    from ..gmodel.snap import snap_to_entity

                    midpoint = snap_to_entity(mesh.model, gclass, midpoint)
                vertex_gid = dmesh.alloc_gid(0)
                point = tuple(midpoint)
                commands.setdefault(part.pid, []).append(
                    (edge, point, vertex_gid)
                )
                for other_pid, other_edge in sorted(
                    part.remotes[edge].items()
                ):
                    router.post(
                        part.pid, other_pid, _TAG_SPLIT,
                        (other_edge, point, vertex_gid),
                    )

        # Phase 3: every part executes its commanded splits (incoming
        # plus, for owners, its own).  Exchange delivers an inbox for every
        # part, so one loop covers both.
        inboxes = router.exchange()
        boundary_splits = 0
        for pid in sorted(inboxes):
            part = dmesh.part(pid)
            ordered = [payload for _s, _t, payload in inboxes[pid]]
            ordered.extend(commands.get(pid, []))
            for edge, point, vertex_gid in sorted(ordered):
                if not part.mesh.has(edge):
                    raise AssertionError(
                        f"part {pid}: commanded split edge {edge} is dead"
                    )
                _split_local(dmesh, part, edge, point=point,
                             vertex_gid=vertex_gid)
                boundary_splits += 1

        stats.boundary_splits += boundary_splits
        splits_this_pass += boundary_splits

        for part in dmesh:
            _drop_dead_bookkeeping(part)
            _fresh_element_gids(dmesh, part)
        rebuild_links(dmesh)
        stats.passes += 1
        if splits_this_pass == 0:
            stats.converged = True
            break
    dmesh.counters.add("dadapt.splits", stats.splits)
    return stats


def coarsen_distributed(
    dmesh: DistributedMesh,
    size: SizeField,
    ratio: float = 0.45,
    max_passes: int = 4,
) -> DistributedAdaptStats:
    """Collapse under-resolved edges whose removed vertex is part-interior.

    A vertex interior to a part exists nowhere else, so the collapse is
    purely local; shared entities of the cavity survive by find-or-create.
    Edges needing coarsening whose *both* endpoints are shared are skipped
    (PUMI migrates such cavities inward first; see module docstring).
    """
    for part in dmesh:
        if part.ghosts:
            raise ValueError("delete ghosts before distributed coarsening")
    stats = DistributedAdaptStats()

    for _pass in range(max_passes):
        collapses = 0
        for part in dmesh:
            mesh = part.mesh
            under = []
            for edge in mesh.entities(1):
                r = edge_size_ratio(mesh, size, edge)
                if r < ratio:
                    under.append((r, edge))
            under.sort(key=lambda item: (item[0], item[1]))
            for _r, edge in under:
                if not mesh.has(edge):
                    continue
                if edge_size_ratio(mesh, size, edge) >= ratio:
                    continue
                a, b = mesh.verts_of(edge)
                # Only an interior vertex may be removed.
                keep: Optional[Ent] = None
                if not part.is_shared(a) and not _touches_boundary(part, a):
                    keep = b
                elif not part.is_shared(b) and not _touches_boundary(part, b):
                    keep = a
                else:
                    continue
                if collapse_edge(mesh, edge, keep=keep):
                    collapses += 1
        for part in dmesh:
            _drop_dead_bookkeeping(part)
            _fresh_element_gids(dmesh, part)
        rebuild_links(dmesh)
        stats.passes += 1
        stats.collapses += collapses
        if collapses == 0:
            stats.converged = True
            break
    dmesh.counters.add("dadapt.collapses", stats.collapses)
    return stats


def _touches_boundary(part: Part, vertex: Ent) -> bool:
    """Whether any entity adjacent to ``vertex`` is part-shared.

    Removing such a vertex rebuilds elements that own shared faces/edges,
    which is safe topologically but changes which elements bound them —
    conservatively skipped so collapses never disturb the part boundary.
    """
    mesh = part.mesh
    for edge in mesh.up(vertex):
        if part.is_shared(edge):
            return True
    return False


def adapt_distributed(
    dmesh: DistributedMesh,
    size: SizeField,
    refine_ratio: float = 1.5,
    coarsen_ratio: float = 0.45,
    max_passes: int = 6,
    do_coarsen: bool = True,
) -> DistributedAdaptStats:
    """Refine then coarsen the distributed mesh to the size field."""
    stats = refine_distributed(
        dmesh, size, ratio=refine_ratio, max_passes=max_passes
    )
    if do_coarsen:
        coarsen_stats = coarsen_distributed(
            dmesh, size, ratio=coarsen_ratio, max_passes=max_passes
        )
        stats.collapses = coarsen_stats.collapses
        stats.passes += coarsen_stats.passes
        stats.converged = stats.converged and coarsen_stats.converged
    return stats
