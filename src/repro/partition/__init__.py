"""Partition component: parts, partition model, distributed-mesh services.

Reproduces the "Partition Model" box of PUMI's software structure (Fig. 1)
and the distributed-mesh operations of Section II: migration, ghosting,
multiple parts per process, and distributed-field synchronization.
"""

from .dadapt import (
    DistributedAdaptStats,
    adapt_distributed,
    coarsen_distributed,
    refine_distributed,
)
from .distribute import distribute
from .dmesh import DistributedMesh
from .fieldsync import DistributedField, accumulate, synchronize
from .io import (
    CorruptCheckpointError,
    load_checkpoint,
    load_dmesh,
    read_manifest,
    save_dmesh,
)
from .ghosting import Overlap, delete_ghosts, ghost_layer
from .migration import MigrationPlan, migrate, rebuild_links, surface_closure
from .multipart import (
    merge_parts,
    move_elements_to_new_part,
    node_entity_counts,
    parts_per_node,
    spawn_empty_part,
)
from .part import Part
from .pmodel import (
    PartitionEntity,
    PartitionModel,
    build_partition_model,
    default_owner_rule,
)

__all__ = [
    "CorruptCheckpointError",
    "DistributedAdaptStats",
    "DistributedField",
    "DistributedMesh",
    "MigrationPlan",
    "Overlap",
    "Part",
    "PartitionEntity",
    "PartitionModel",
    "accumulate",
    "build_partition_model",
    "adapt_distributed",
    "coarsen_distributed",
    "default_owner_rule",
    "delete_ghosts",
    "distribute",
    "ghost_layer",
    "load_checkpoint",
    "load_dmesh",
    "read_manifest",
    "merge_parts",
    "migrate",
    "move_elements_to_new_part",
    "node_entity_counts",
    "parts_per_node",
    "rebuild_links",
    "refine_distributed",
    "save_dmesh",
    "spawn_empty_part",
    "surface_closure",
    "synchronize",
]
