"""Distributed fields and owner→copy synchronization across part boundaries.

Part-boundary entities are duplicated on every residence part, so any field
over them has one value per copy; keeping those values consistent is the
field layer's distributed service.  Two primitives cover the standard
patterns:

* :func:`synchronize` — the owner's value overwrites every copy (the
  canonical owner-to-copy broadcast after the owner updates a dof);
* :func:`accumulate` — copies' values are summed on the owner and the total
  redistributed (finite-element assembly of shared dofs).

:class:`DistributedField` bundles one :class:`~repro.field.field.Field` per
part under one name so callers can treat the distributed field as a unit.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..field.field import Field, Shape
from ..mesh.entity import Ent
from ..obs.stats import AccumulateStats, CommProbe, SyncStats
from ..obs.tracer import trace_span
from ..parallel.codec import decode_value_batch, encode_value_batch
from .dmesh import DistributedMesh

_TAG_SYNC = 21
_TAG_ACCUM = 22


class DistributedField:
    """One field per part, sharing a name, entity dimension and shape."""

    def __init__(
        self,
        dmesh: DistributedMesh,
        name: str,
        entity_dim: int = 0,
        shape: Shape = 1,
    ) -> None:
        self.dmesh = dmesh
        self.name = name
        self.entity_dim = entity_dim
        self.fields: Dict[int, Field] = {
            part.pid: Field(part.mesh, name, entity_dim, shape)
            for part in dmesh
        }

    def on(self, pid: int) -> Field:
        return self.fields[pid]

    def set_from_coords(self, fn) -> None:
        """Assign ``fn(xyz)`` on every part's vertices (vertex fields)."""
        for part in self.dmesh:
            self.fields[part.pid].set_from_coords(fn)

    def zero_all(self) -> None:
        for field in self.fields.values():
            field.zero_all()

    def items(self) -> Iterator[Tuple[int, Ent, np.ndarray]]:
        for pid in sorted(self.fields):
            for ent, value in self.fields[pid].items():
                yield pid, ent, value

    def max_copy_disagreement(self) -> float:
        """Largest |difference| between copies of any shared entity's value.

        Zero means the field is synchronized.
        """
        worst = 0.0
        for part in self.dmesh:
            field = self.fields[part.pid]
            for ent, copies in part.remotes.items():
                if ent.dim != self.entity_dim or not field.has(ent):
                    continue
                mine = field.get(ent)
                for other_pid, other_ent in copies.items():
                    other_field = self.fields[other_pid]
                    if other_field.has(other_ent):
                        diff = float(
                            np.abs(mine - other_field.get(other_ent)).max()
                        )
                        worst = max(worst, diff)
        return worst


def synchronize(dfield: DistributedField) -> SyncStats:
    """Overwrite every copy with the owner's value.

    Returns a :class:`SyncStats` record; ``stats.values_sent`` is the number
    of owner-to-copy values shipped.
    """
    dmesh = dfield.dmesh
    probe = CommProbe(dmesh.counters)
    binary = dmesh.codec == "binary"
    sent = 0
    with trace_span(dmesh.tracer, "synchronize", field=dfield.name):
        router = dmesh.router()
        outbound: Dict[Tuple[int, int], list] = {}
        for part in dmesh:
            field = dfield.on(part.pid)
            for ent in sorted(part.remotes):
                if ent.dim != dfield.entity_dim or not part.owns(ent):
                    continue
                if not field.has(ent):
                    continue
                value = field.get(ent)
                for other_pid, other_ent in sorted(part.remotes[ent].items()):
                    if binary:
                        outbound.setdefault((part.pid, other_pid), []).append(
                            (other_ent, value)
                        )
                    else:
                        router.post(
                            part.pid, other_pid, _TAG_SYNC, (other_ent, value)
                        )
                    sent += 1
        # One encoded value buffer per neighbor pair (binary codec).
        for (src, dst), items in sorted(outbound.items()):
            blob = encode_value_batch(items)
            dmesh.counters.add("net.bytes.encoded", len(blob))
            dmesh.counters.add("net.messages.coalesced", len(items))
            router.post(src, dst, _TAG_SYNC, blob)
        inboxes = router.exchange()
        for pid in sorted(inboxes):
            field = dfield.on(pid)
            for _src, _tag, payload in inboxes[pid]:
                if isinstance(payload, (bytes, bytearray)):
                    for ent, value in decode_value_batch(payload):
                        field.set(ent, value)
                else:
                    ent, value = payload
                    field.set(ent, value)
    dmesh.counters.add("fieldsync.values", sent)
    return SyncStats(
        values_sent=sent,
        entity_dim=dfield.entity_dim,
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
        encoded_bytes=probe.encoded_bytes(),
        messages_coalesced=probe.messages_coalesced(),
    )


def accumulate(dfield: DistributedField) -> AccumulateStats:
    """Sum all copies' values onto the owner, then synchronize back.

    The finite-element assembly pattern: each part contributes its local
    portion of a shared dof; afterwards every copy holds the global sum.
    Returns an :class:`AccumulateStats` record whose ``contributions`` is
    the copy-to-owner value count and ``synced`` the redistribution count.
    """
    dmesh = dfield.dmesh
    probe = CommProbe(dmesh.counters)
    binary = dmesh.codec == "binary"
    with trace_span(dmesh.tracer, "accumulate", field=dfield.name):
        router = dmesh.router()
        sent = 0
        outbound: Dict[Tuple[int, int], list] = {}
        for part in dmesh:
            field = dfield.on(part.pid)
            for ent in sorted(part.remotes):
                if ent.dim != dfield.entity_dim or part.owns(ent):
                    continue
                if not field.has(ent):
                    continue
                owner = part.owner(ent)
                owner_ent = part.remotes[ent][owner]
                if binary:
                    outbound.setdefault((part.pid, owner), []).append(
                        (owner_ent, field.get(ent))
                    )
                else:
                    router.post(
                        part.pid, owner, _TAG_ACCUM,
                        (owner_ent, field.get(ent)),
                    )
                sent += 1
        for (src, dst), items in sorted(outbound.items()):
            blob = encode_value_batch(items)
            dmesh.counters.add("net.bytes.encoded", len(blob))
            dmesh.counters.add("net.messages.coalesced", len(items))
            router.post(src, dst, _TAG_ACCUM, blob)
        inboxes = router.exchange()
        for pid in sorted(inboxes):
            field = dfield.on(pid)
            for _src, _tag, payload in inboxes[pid]:
                if isinstance(payload, (bytes, bytearray)):
                    for ent, value in decode_value_batch(payload):
                        field.set(ent, field.get(ent) + value)
                else:
                    ent, value = payload
                    field.set(ent, field.get(ent) + value)
        sync = synchronize(dfield)
    return AccumulateStats(
        contributions=sent,
        synced=sync.values_sent,
        entity_dim=dfield.entity_dim,
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
        encoded_bytes=probe.encoded_bytes(),
        messages_coalesced=probe.messages_coalesced(),
    )
