"""Distributed fields and owner→copy synchronization across part boundaries.

Part-boundary entities are duplicated on every residence part, so any field
over them has one value per copy; keeping those values consistent is the
field layer's distributed service.  Two primitives cover the standard
patterns:

* :func:`synchronize` — the owner's value overwrites every copy (the
  canonical owner-to-copy broadcast after the owner updates a dof);
* :func:`accumulate` — copies' values are summed on the owner and the total
  redistributed (finite-element assembly of shared dofs).

Both are one-liner applications of the star-forest primitive
(:class:`~repro.parallel.sf.StarForest`): the ownership relation *is* a
star forest — roots are owner copies, leaves the other copies — so
``synchronize`` is ``bcast`` over that forest and ``accumulate`` is
``reduce(op="sum")`` over its transpose followed by the same ``bcast``.
Values ride the coalesced value-batch codec via the ``VALUES`` datatype.

:class:`DistributedField` bundles one :class:`~repro.field.field.Field` per
part under one name so callers can treat the distributed field as a unit.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from ..field.field import Field, Shape
from ..mesh.entity import Ent
from ..obs.stats import AccumulateStats, CommProbe, SyncStats
from ..obs.tracer import trace_span
from ..parallel.sf import VALUES, StarForest
from .dmesh import DistributedMesh


class DistributedField:
    """One field per part, sharing a name, entity dimension and shape."""

    def __init__(
        self,
        dmesh: DistributedMesh,
        name: str,
        entity_dim: int = 0,
        shape: Shape = 1,
    ) -> None:
        self.dmesh = dmesh
        self.name = name
        self.entity_dim = entity_dim
        self.fields: Dict[int, Field] = {
            part.pid: Field(part.mesh, name, entity_dim, shape)
            for part in dmesh
        }

    def on(self, pid: int) -> Field:
        return self.fields[pid]

    def set_from_coords(self, fn) -> None:
        """Assign ``fn(xyz)`` on every part's vertices (vertex fields)."""
        for part in self.dmesh:
            self.fields[part.pid].set_from_coords(fn)

    def zero_all(self) -> None:
        for field in self.fields.values():
            field.zero_all()

    def items(self) -> Iterator[Tuple[int, Ent, np.ndarray]]:
        for pid in sorted(self.fields):
            for ent, value in self.fields[pid].items():
                yield pid, ent, value

    def max_copy_disagreement(self) -> float:
        """Largest |difference| between copies of any shared entity's value.

        Zero means the field is synchronized.
        """
        worst = 0.0
        for part in self.dmesh:
            field = self.fields[part.pid]
            for ent, copies in part.remotes.items():
                if ent.dim != self.entity_dim or not field.has(ent):
                    continue
                mine = field.get(ent)
                for other_pid, other_ent in copies.items():
                    other_field = self.fields[other_pid]
                    if other_field.has(other_ent):
                        diff = float(
                            np.abs(mine - other_field.get(other_ent)).max()
                        )
                        worst = max(worst, diff)
        return worst


def _ownership_forest(dfield: DistributedField) -> StarForest:
    """The owner→copy star forest of the field's shared entities.

    Roots are the owner copies holding a value; leaves every other copy of
    the same entity.  ``bcast`` over this forest is exactly owner→copy
    synchronization.
    """
    dmesh = dfield.dmesh
    forest = StarForest(dmesh, name=f"sync.{dfield.name}")
    for part in dmesh:
        field = dfield.on(part.pid)
        for ent in sorted(part.remotes):
            if ent.dim != dfield.entity_dim or not part.owns(ent):
                continue
            if not field.has(ent):
                continue
            for other_pid, other_ent in sorted(part.remotes[ent].items()):
                forest.add_leaf(other_pid, other_ent, part.pid, ent)
    return forest


def _contribution_forest(dfield: DistributedField) -> StarForest:
    """The copy→owner star forest: non-owner copies rooted at the owner.

    The transpose of :func:`_ownership_forest`, restricted to copies that
    actually hold a value.  ``reduce(op="sum")`` over it is finite-element
    assembly of the shared dofs.
    """
    dmesh = dfield.dmesh
    forest = StarForest(dmesh, name=f"accum.{dfield.name}")
    for part in dmesh:
        field = dfield.on(part.pid)
        for ent in sorted(part.remotes):
            if ent.dim != dfield.entity_dim or part.owns(ent):
                continue
            if not field.has(ent):
                continue
            owner = part.owner(ent)
            owner_ent = part.remotes[ent][owner]
            forest.add_leaf(part.pid, ent, owner, owner_ent)
    return forest


def synchronize(dfield: DistributedField) -> SyncStats:
    """Overwrite every copy with the owner's value.

    Returns a :class:`SyncStats` record; ``stats.values_sent`` is the number
    of owner-to-copy values shipped and ``stats.sf_ops`` the star-forest
    operations executed (always one broadcast).
    """
    dmesh = dfield.dmesh
    probe = CommProbe(dmesh.counters)

    def batch_set(lpid: int, _rpid: int, items) -> None:
        # Vectorized owner→copy delivery: one scatter per part pair.
        field = dfield.on(lpid)
        ids = np.fromiter(
            (ent.idx for ent, _value in items), dtype=np.int64, count=len(items)
        )
        values = np.asarray([value for _ent, value in items], dtype=float)
        field.set_many(ids, values)

    with trace_span(dmesh.tracer, "synchronize", field=dfield.name):
        forest = _ownership_forest(dfield)
        forest.bcast(
            lambda rpid, ent: dfield.on(rpid).get(ent),
            datatype=VALUES,
            batch_set=batch_set,
        )
        sent = forest.nleaves
    dmesh.counters.add("fieldsync.values", sent)
    return SyncStats(
        values_sent=sent,
        entity_dim=dfield.entity_dim,
        sf_ops=1,
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
        encoded_bytes=probe.encoded_bytes(),
        messages_coalesced=probe.messages_coalesced(),
    )


def accumulate(dfield: DistributedField) -> AccumulateStats:
    """Sum all copies' values onto the owner, then synchronize back.

    The finite-element assembly pattern: each part contributes its local
    portion of a shared dof; afterwards every copy holds the global sum.
    Returns an :class:`AccumulateStats` record whose ``contributions`` is
    the copy-to-owner value count and ``synced`` the redistribution count;
    ``sf_ops`` counts the reduce plus the broadcast.
    """
    dmesh = dfield.dmesh
    probe = CommProbe(dmesh.counters)
    with trace_span(dmesh.tracer, "accumulate", field=dfield.name):
        forest = _contribution_forest(dfield)

        def fold(rpid: int, ent: Ent, combined) -> None:
            field = dfield.on(rpid)
            field.set(ent, field.get(ent) + combined)

        forest.reduce(
            lambda lpid, ent: dfield.on(lpid).get(ent),
            fold,
            op="sum",
            datatype=VALUES,
        )
        sent = forest.nleaves
        sync = synchronize(dfield)
    return AccumulateStats(
        contributions=sent,
        synced=sync.values_sent,
        entity_dim=dfield.entity_dim,
        sf_ops=1 + sync.sf_ops,
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
        encoded_bytes=probe.encoded_bytes(),
        messages_coalesced=probe.messages_coalesced(),
    )
