"""The distributed mesh: parts linked by remote copies over a BSP network.

PUMI "supports a topological representation of the distributed mesh and
efficient distributed manipulation functions through the use of partition
model" (paper, Section II).  :class:`DistributedMesh` is that representation:
``N`` :class:`~repro.partition.part.Part` objects (each a serial mesh plus
remote-copy links), a message network classified by machine topology, and
global-id allocation for entities created during modification.

All distributed operations (migration, ghosting, synchronization, ParMA) are
bulk-synchronous: parts compute locally and post messages, one ``exchange``
delivers them.  This file holds the container and its integrity checks;
the operations live in sibling modules.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..gmodel.model import Model
from ..mesh.entity import Ent
from ..obs.tracer import Tracer, current as current_tracer
from ..parallel.network import CODECS, Network
from ..parallel.perf import PerfCounters, GLOBAL
from ..parallel.routing import BufferedRouter
from ..parallel.topology import MachineTopology, flat
from .part import Part


class DistributedMesh:
    """A mesh distributed to N parts (optionally mapped onto a machine)."""

    def __init__(
        self,
        nparts: int,
        model: Optional[Model] = None,
        topology: Optional[MachineTopology] = None,
        counters: Optional[PerfCounters] = None,
        sanitize: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        codec: str = "binary",
    ) -> None:
        if nparts < 1:
            raise ValueError(f"need at least one part, got {nparts}")
        if codec not in CODECS:
            raise ValueError(f"unknown codec {codec!r} (expected {CODECS})")
        self.model = model
        #: Wire codec for the part networks and the distributed services'
        #: batch encoding: ``"binary"`` (default, compact coalesced
        #: buffers) or ``"pickle"`` (per-record escape hatch for A/B
        #: measurement).  Assign at any time — :meth:`router`
        #: re-propagates it to the cached networks.
        self.codec = codec
        #: Alias-sanitizer mode for the part networks (None = REPRO_SANITIZE).
        self.sanitize = sanitize
        #: Observability hook (:class:`~repro.obs.Tracer`): the part
        #: networks charge each superstep's traffic to it and the
        #: distributed services open spans on it.  ``None`` resolves to the
        #: installed default tracer (normally also ``None``); assign at any
        #: time — :meth:`router` re-propagates it to the cached networks.
        self.tracer = tracer if tracer is not None else current_tracer()
        #: Fault-injection hook (:class:`~repro.resilience.FaultInjector`):
        #: when assigned, the part networks route every post/exchange
        #: through it (message drop/duplicate/corrupt/delay, scheduled rank
        #: crashes).  Assign at any time — :meth:`router` re-propagates it
        #: to the cached networks, like :attr:`tracer`.
        self.fault_injector = None
        self._auto_topology = topology is None
        self.topology = topology if topology is not None else flat(nparts)
        self.counters = counters if counters is not None else GLOBAL
        self.parts: List[Part] = [Part(pid) for pid in range(nparts)]
        for part in self.parts:
            part.mesh.model = model
        # Central gid allocation: one counter per dimension.  A real MPI
        # implementation hands each part a strided id range; in this
        # single-process simulation a shared counter gives the same
        # uniqueness guarantee deterministically.
        self._gid_next = [0, 0, 0, 0]
        self._network: Optional[Network] = None
        self._trusted_network: Optional[Network] = None

    # -- parts ------------------------------------------------------------

    @property
    def nparts(self) -> int:
        return len(self.parts)

    def part(self, pid: int) -> Part:
        if not 0 <= pid < self.nparts:
            raise ValueError(f"part id {pid} out of range [0, {self.nparts})")
        return self.parts[pid]

    def __iter__(self) -> Iterator[Part]:
        return iter(self.parts)

    def add_part(self) -> Part:
        """Append a new empty part (multiple-parts-per-process support)."""
        part = Part(self.nparts)
        part.mesh.model = self.model
        self.parts.append(part)
        if self._auto_topology:
            self.topology = flat(self.nparts)
        elif self.topology.total_cores < self.nparts:
            raise ValueError(
                "machine topology has no processing unit for the new part"
            )
        self._network = None  # force rebuild at next exchange
        return part

    # -- communication -----------------------------------------------------

    def router(self, trusted: bool = False) -> BufferedRouter:
        """A coalescing router over the (lazily rebuilt) part network.

        ``trusted`` selects a channel that skips the off-node pickling
        round-trip; use it only for payloads of immutable values (the link
        rebuild's integer tuples), where sender/receiver aliasing cannot
        violate distributed-memory semantics.
        """
        if self._network is None or self._network.nparts != self.nparts:
            self._network = Network(
                self.nparts,
                topology=self.topology,
                counters=self.counters,
                codec=self.codec,
                sanitize=self.sanitize,
                tracer=self.tracer,
                fault_injector=self.fault_injector,
            )
            self._trusted_network = Network(
                self.nparts,
                topology=self.topology,
                counters=self.counters,
                copy_off_node=False,
                codec=self.codec,
                sanitize=self.sanitize,
                tracer=self.tracer,
                fault_injector=self.fault_injector,
            )
        else:
            # The tracer / fault-injector / codec attributes may have been
            # (re)assigned since the networks were built; keep them
            # pointing at the current ones.
            self._network.tracer = self.tracer
            self._trusted_network.tracer = self.tracer
            self._network.fault_injector = self.fault_injector
            self._trusted_network.fault_injector = self.fault_injector
            self._network.codec = self.codec
            self._trusted_network.codec = self.codec
        return BufferedRouter(
            self._trusted_network if trusted else self._network
        )

    # -- global ids ---------------------------------------------------------

    def alloc_gid(self, dim: int) -> int:
        """A fresh, never-used global id for dimension ``dim``."""
        gid = self._gid_next[dim]
        self._gid_next[dim] += 1
        return gid

    def note_gid(self, dim: int, gid: int) -> None:
        """Record an externally assigned gid so alloc never collides."""
        if gid >= self._gid_next[dim]:
            self._gid_next[dim] = gid + 1

    # -- accounting -----------------------------------------------------------

    def element_dim(self) -> int:
        """Highest entity dimension present on any part."""
        return max((part.mesh.dim() for part in self.parts), default=0)

    def entity_counts(self) -> np.ndarray:
        """Per-part live non-ghost entity counts, shape ``(nparts, 4)``.

        This is the load metric the paper balances: part-boundary entities
        are counted on every part holding them (as in PHASTA dof balance).
        """
        return np.asarray([part.entity_counts() for part in self.parts])

    def owned_counts(self) -> np.ndarray:
        """Per-part owned entity counts (each entity counted exactly once)."""
        return np.asarray(
            [[part.owned_count(d) for d in range(4)] for part in self.parts]
        )

    def total_owned(self, dim: int) -> int:
        return int(self.owned_counts()[:, dim].sum())

    def shared_entity_count(self, dim: Optional[int] = None) -> int:
        """Total part-boundary entity copies across all parts."""
        total = 0
        for part in self.parts:
            for ent in part.remotes:
                if (dim is None or ent.dim == dim) and part.remotes[ent]:
                    total += 1
        return total

    def neighbor_map(self, dim: Optional[int] = None) -> Dict[int, Set[int]]:
        """Part adjacency graph: pid -> neighboring pids (sharing ``dim``)."""
        return {part.pid: part.neighbors(dim) for part in self.parts}

    # -- integrity ---------------------------------------------------------------

    def verify(self, check_meshes: bool = True) -> None:
        """Check every distributed-representation invariant; raise on failure.

        * each part's serial mesh is valid (optionally),
        * remote-copy links are symmetric and connect entities with equal
          gids and dimensions,
        * shared entities' vertex gid sets agree across parts,
        * ghosts mirror a live entity on their home part.
        """
        from ..mesh.verify import verify as verify_mesh

        for part in self.parts:
            if check_meshes and part.mesh.count(0):
                verify_mesh(
                    part.mesh,
                    allow_dangling=bool(part.ghosts),
                    check_classification=False,
                )
            for ent, copies in part.remotes.items():
                if not part.mesh.has(ent):
                    raise AssertionError(
                        f"part {part.pid}: remote link from dead entity {ent}"
                    )
                key = _entity_key(part, ent)
                for other_pid, other_ent in copies.items():
                    if other_pid == part.pid:
                        raise AssertionError(
                            f"part {part.pid}: self remote link on {ent}"
                        )
                    other = self.part(other_pid)
                    if not other.mesh.has(other_ent):
                        raise AssertionError(
                            f"part {part.pid}: {ent} links to dead "
                            f"{other_ent} on part {other_pid}"
                        )
                    other_key = _entity_key(other, other_ent)
                    if other_key != key:
                        raise AssertionError(
                            f"identity mismatch: part {part.pid} {ent} "
                            f"(key {key}) vs part {other_pid} {other_ent} "
                            f"(key {other_key})"
                        )
                    back = other.remotes.get(other_ent, {})
                    if back.get(part.pid) != ent:
                        raise AssertionError(
                            f"asymmetric remote link: part {part.pid} {ent} "
                            f"-> part {other_pid} {other_ent} not reciprocated"
                        )
            for ghost, (home_pid, home_ent) in part.ghost_home.items():
                if not part.mesh.has(ghost):
                    raise AssertionError(
                        f"part {part.pid}: dead ghost {ghost}"
                    )
                if home_ent is not None and not self.part(home_pid).mesh.has(
                    home_ent
                ):
                    raise AssertionError(
                        f"part {part.pid}: ghost {ghost} home entity is dead"
                    )

    def __repr__(self) -> str:
        counts = self.entity_counts().sum(axis=0)
        return (
            f"DistributedMesh({self.nparts} parts, "
            f"verts={counts[0]}, edges={counts[1]}, faces={counts[2]}, "
            f"regions={counts[3]})"
        )


def _entity_key(part: Part, ent: Ent):
    """Vertex-gid identity of an entity (see migration.entity_key)."""
    if ent.dim == 0:
        return (part.gid(ent),)
    return tuple(sorted(part.gid(v) for v in part.mesh.verts_of(ent)))


