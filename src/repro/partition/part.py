"""A part: one piece of a distributed mesh.

"When a mesh is distributed to N parts, each part is assigned to a process or
processing core.  A part is a subset of topological mesh entities of the
entire mesh, uniquely identified by its handle or id" (paper, Section II-A).

Each part is a full serial :class:`~repro.mesh.mesh.Mesh` plus the extra
bookkeeping the distributed representation needs:

* **global ids** — every entity carries a gid unique across the whole
  distributed mesh within its dimension, used to match copies across parts;
* **remote copies** — for part-boundary entities, the map
  ``{other part id: remote entity handle}`` (the paper's duplicated
  entities);
* **ghosts** — read-only off-part copies created by ghosting, excluded from
  ownership and balance accounting.

Residence parts and ownership are derived, not stored: the residence part set
of an entity is its own part plus its remote-copy parts, and the owning part
is the smallest id in that set (the standard deterministic rule; the
partition model can impose others).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh


class Part:
    """One part of a distributed mesh."""

    def __init__(self, pid: int, mesh: Optional[Mesh] = None) -> None:
        self.pid = pid
        self.mesh = mesh if mesh is not None else Mesh()
        #: remote copies: local entity -> {remote pid: remote entity}.
        self.remotes: Dict[Ent, Dict[int, Ent]] = {}
        #: ghost entities (read-only off-part copies) present locally.
        self.ghosts: Set[Ent] = set()
        #: for each ghost, the (owner pid, owner-local entity) it mirrors.
        self.ghost_home: Dict[Ent, Tuple[int, Ent]] = {}
        self._gid: List[Dict[int, int]] = [{}, {}, {}, {}]
        self._by_gid: List[Dict[int, int]] = [{}, {}, {}, {}]

    # -- global ids ----------------------------------------------------------

    def set_gid(self, ent: Ent, gid: int) -> None:
        """Assign ``ent``'s global id (one per dimension, unique per mesh)."""
        old = self._gid[ent.dim].get(ent.idx)
        if old is not None:
            del self._by_gid[ent.dim][old]
        existing = self._by_gid[ent.dim].get(gid)
        if existing is not None and existing != ent.idx:
            raise ValueError(
                f"part {self.pid}: gid {gid} (dim {ent.dim}) already taken "
                f"by entity {existing}"
            )
        self._gid[ent.dim][ent.idx] = gid
        self._by_gid[ent.dim][gid] = ent.idx

    def gid(self, ent: Ent) -> int:
        try:
            return self._gid[ent.dim][ent.idx]
        except KeyError:
            raise KeyError(f"part {self.pid}: {ent} has no global id") from None

    def has_gid(self, ent: Ent) -> bool:
        return ent.idx in self._gid[ent.dim]

    def by_gid(self, dim: int, gid: int) -> Optional[Ent]:
        idx = self._by_gid[dim].get(gid)
        return Ent(dim, idx) if idx is not None else None

    def drop_gid(self, ent: Ent) -> None:
        gid = self._gid[ent.dim].pop(ent.idx, None)
        if gid is not None:
            self._by_gid[ent.dim].pop(gid, None)

    # -- residence / ownership -------------------------------------------------

    def residence(self, ent: Ent) -> Tuple[int, ...]:
        """Sorted residence-part ids of ``ent`` (always includes this part)."""
        copies = self.remotes.get(ent)
        if not copies:
            return (self.pid,)
        return tuple(sorted([self.pid, *copies.keys()]))

    def is_shared(self, ent: Ent) -> bool:
        """True when ``ent`` is a part-boundary entity (has remote copies)."""
        return bool(self.remotes.get(ent))

    def is_ghost(self, ent: Ent) -> bool:
        return ent in self.ghosts

    def owner(self, ent: Ent) -> int:
        """Owning part id of ``ent`` — the smallest residence part.

        Ghosts are owned by their home part regardless of residence.
        """
        home = self.ghost_home.get(ent)
        if home is not None:
            return home[0]
        return self.residence(ent)[0]

    def owns(self, ent: Ent) -> bool:
        return self.owner(ent) == self.pid

    # -- part boundary iteration -------------------------------------------------

    def shared_entities(self, dim: int) -> Iterator[Ent]:
        """Part-boundary entities of one dimension, in id order."""
        for ent in sorted(self.remotes):
            if ent.dim == dim:
                yield ent

    def neighbors(self, dim: Optional[int] = None) -> Set[int]:
        """Part ids sharing any entity (of ``dim``, or of any dimension).

        "A part Pi neighbors part Pj over entity type d if they share d
        dimensional mesh entities on part boundary" (paper, Section II-D).
        """
        result: Set[int] = set()
        for ent, copies in self.remotes.items():
            if dim is None or ent.dim == dim:
                result.update(copies.keys())
        return result

    # -- counting --------------------------------------------------------------

    def entity_count(self, dim: int) -> int:
        """Live non-ghost entities of one dimension on this part."""
        total = self.mesh.count(dim)
        ghosts = sum(1 for g in self.ghosts if g.dim == dim)
        return total - ghosts

    def entity_counts(self) -> Tuple[int, int, int, int]:
        return tuple(self.entity_count(d) for d in range(4))  # type: ignore

    def owned_count(self, dim: int) -> int:
        """Entities of ``dim`` this part owns (each counted once globally)."""
        total = 0
        for ent in self.mesh.entities(dim):
            if ent not in self.ghosts and self.owns(ent):
                total += 1
        return total

    def __repr__(self) -> str:
        v, e, f, r = self.entity_counts()
        return (
            f"Part({self.pid}, verts={v}, edges={e}, faces={f}, regions={r}, "
            f"shared={len(self.remotes)}, ghosts={len(self.ghosts)})"
        )
