"""A part: one piece of a distributed mesh.

"When a mesh is distributed to N parts, each part is assigned to a process or
processing core.  A part is a subset of topological mesh entities of the
entire mesh, uniquely identified by its handle or id" (paper, Section II-A).

Each part is a full serial :class:`~repro.mesh.mesh.Mesh` plus the extra
bookkeeping the distributed representation needs:

* **global ids** — every entity carries a gid unique across the whole
  distributed mesh within its dimension, used to match copies across parts.
  Gids are stored as a per-dimension int64 column indexed by entity handle
  (-1 = unset) with a gid→handle reverse dict, so single lookups stay O(1)
  and batch lookups (:meth:`gids_of`) are one vectorized gather;
* **remote copies** — for part-boundary entities, the map
  ``{other part id: remote entity handle}`` (the paper's duplicated
  entities);
* **ghosts** — read-only off-part copies created by ghosting, excluded from
  ownership and balance accounting.

Residence parts and ownership are derived, not stored: the residence part set
of an entity is its own part plus its remote-copy parts, and the owning part
is the smallest id in that set (the standard deterministic rule; the
partition model can impose others).

Because the mesh core reuses destroyed handles (free-list allocation), the
part registers a destroy listener on its mesh and evicts gid/remote/ghost
entries the moment their entity dies — a recycled handle can therefore never
alias stale bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh

_UNSET = np.int64(-1)


class Part:
    """One part of a distributed mesh."""

    def __init__(self, pid: int, mesh: Optional[Mesh] = None) -> None:
        self.pid = pid
        #: remote copies: local entity -> {remote pid: remote entity}.
        self.remotes: Dict[Ent, Dict[int, Ent]] = {}
        #: ghost entities (read-only off-part copies) present locally.
        self.ghosts: Set[Ent] = set()
        #: for each ghost, the (owner pid, owner-local entity) it mirrors.
        self.ghost_home: Dict[Ent, Tuple[int, Ent]] = {}
        #: per-dim gid columns indexed by entity handle; -1 = unset.
        self._gid_arr: List[np.ndarray] = [
            np.full(16, _UNSET, dtype=np.int64) for _ in range(4)
        ]
        self._by_gid: List[Dict[int, int]] = [{}, {}, {}, {}]
        self.mesh = mesh if mesh is not None else Mesh()

    # -- mesh attachment -----------------------------------------------------

    @property
    def mesh(self) -> Mesh:
        return self._mesh

    @mesh.setter
    def mesh(self, mesh: Mesh) -> None:
        self._mesh = mesh
        mesh.add_destroy_listener(self._entity_destroyed)

    def _entity_destroyed(self, ent: Ent) -> None:
        """Eagerly evict all bookkeeping for a destroyed entity.

        Handle reuse makes lazy cleanup unsound: by the time a sweep runs,
        the handle may already name a different live entity.
        """
        self.drop_gid(ent)
        self.remotes.pop(ent, None)
        self.ghosts.discard(ent)
        self.ghost_home.pop(ent, None)

    # -- global ids ----------------------------------------------------------

    def _gid_col(self, dim: int, idx: int) -> np.ndarray:
        col = self._gid_arr[dim]
        if idx >= len(col):
            grown = np.full(max(2 * len(col), idx + 1), _UNSET, dtype=np.int64)
            grown[: len(col)] = col
            self._gid_arr[dim] = col = grown
        return col

    def set_gid(self, ent: Ent, gid: int) -> None:
        """Assign ``ent``'s global id (one per dimension, unique per mesh)."""
        col = self._gid_col(ent.dim, ent.idx)
        old = col[ent.idx]
        if old != _UNSET:
            del self._by_gid[ent.dim][int(old)]
        existing = self._by_gid[ent.dim].get(gid)
        if existing is not None and existing != ent.idx:
            raise ValueError(
                f"part {self.pid}: gid {gid} (dim {ent.dim}) already taken "
                f"by entity {existing}"
            )
        col[ent.idx] = gid
        self._by_gid[ent.dim][gid] = ent.idx

    def gid(self, ent: Ent) -> int:
        col = self._gid_arr[ent.dim]
        if ent.idx < len(col):
            gid = col[ent.idx]
            if gid != _UNSET:
                return int(gid)
        raise KeyError(f"part {self.pid}: {ent} has no global id")

    def has_gid(self, ent: Ent) -> bool:
        col = self._gid_arr[ent.dim]
        return ent.idx < len(col) and col[ent.idx] != _UNSET

    def by_gid(self, dim: int, gid: int) -> Optional[Ent]:
        idx = self._by_gid[dim].get(gid)
        return Ent(dim, idx) if idx is not None else None

    def drop_gid(self, ent: Ent) -> None:
        col = self._gid_arr[ent.dim]
        if ent.idx < len(col):
            gid = col[ent.idx]
            if gid != _UNSET:
                col[ent.idx] = _UNSET
                self._by_gid[ent.dim].pop(int(gid), None)

    # -- batch gid access ------------------------------------------------------

    def gid_array(self, dim: int) -> np.ndarray:
        """The raw gid column for ``dim`` (handle-indexed; -1 = unset)."""
        need = self.mesh.core.top[dim]
        if need > len(self._gid_arr[dim]):
            self._gid_col(dim, need - 1)
        return self._gid_arr[dim]

    def gids_of(self, dim: int, ids: np.ndarray) -> np.ndarray:
        """Vectorized gid lookup for an array of entity handles."""
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            return np.empty(0, dtype=np.int64)
        col = self._gid_arr[dim]
        if len(ids) and int(ids.max()) >= len(col):
            col = self._gid_col(dim, int(ids.max()))
        return col[ids]

    def gid_index_set(self, dim: int) -> Set[int]:
        """Handles of dimension ``dim`` that currently carry a gid."""
        col = self._gid_arr[dim]
        return set(np.nonzero(col != _UNSET)[0].tolist())

    # -- residence / ownership -------------------------------------------------

    def residence(self, ent: Ent) -> Tuple[int, ...]:
        """Sorted residence-part ids of ``ent`` (always includes this part)."""
        copies = self.remotes.get(ent)
        if not copies:
            return (self.pid,)
        return tuple(sorted([self.pid, *copies.keys()]))

    def is_shared(self, ent: Ent) -> bool:
        """True when ``ent`` is a part-boundary entity (has remote copies)."""
        return bool(self.remotes.get(ent))

    def is_ghost(self, ent: Ent) -> bool:
        return ent in self.ghosts

    def owner(self, ent: Ent) -> int:
        """Owning part id of ``ent`` — the smallest residence part.

        Ghosts are owned by their home part regardless of residence.
        """
        home = self.ghost_home.get(ent)
        if home is not None:
            return home[0]
        return self.residence(ent)[0]

    def owns(self, ent: Ent) -> bool:
        return self.owner(ent) == self.pid

    # -- part boundary iteration -------------------------------------------------

    def shared_entities(self, dim: int) -> Iterator[Ent]:
        """Part-boundary entities of one dimension, in id order."""
        for ent in sorted(self.remotes):
            if ent.dim == dim:
                yield ent

    def neighbors(self, dim: Optional[int] = None) -> Set[int]:
        """Part ids sharing any entity (of ``dim``, or of any dimension).

        "A part Pi neighbors part Pj over entity type d if they share d
        dimensional mesh entities on part boundary" (paper, Section II-D).
        """
        result: Set[int] = set()
        for ent, copies in self.remotes.items():
            if dim is None or ent.dim == dim:
                result.update(copies.keys())
        return result

    # -- counting --------------------------------------------------------------

    def entity_count(self, dim: int) -> int:
        """Live non-ghost entities of one dimension on this part."""
        total = self.mesh.count(dim)
        ghosts = sum(1 for g in self.ghosts if g.dim == dim)
        return total - ghosts

    def entity_counts(self) -> Tuple[int, int, int, int]:
        return tuple(self.entity_count(d) for d in range(4))  # type: ignore

    def owned_count(self, dim: int) -> int:
        """Entities of ``dim`` this part owns (each counted once globally)."""
        total = 0
        for ent in self.mesh.entities(dim):
            if ent not in self.ghosts and self.owns(ent):
                total += 1
        return total

    def __repr__(self) -> str:
        v, e, f, r = self.entity_counts()
        return (
            f"Part({self.pid}, verts={v}, edges={e}, faces={f}, regions={r}, "
            f"shared={len(self.remotes)}, ghosts={len(self.ghosts)})"
        )
