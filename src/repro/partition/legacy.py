"""Frozen pre-star-forest exchange paths, kept for the parity gate.

When ghosting and field synchronization were re-expressed over
:class:`~repro.parallel.sf.StarForest`, the hand-rolled implementations
they replaced were copied here verbatim.  They are **not public API** and
must not grow features: their sole job is to anchor the CI ``sf-parity``
gate (``benchmarks/bench_sf_parity.py``), which A/Bs the star-forest path
against these references and fails if the SF path ever costs more
supersteps or more encoded wire bytes for the same workload.

``legacy_ghost_layer`` carries the pre-SF limitation by construction:
layers beyond the first pull only from each ghost's home part, so rings
wrapping a third part are truncated there.  The star-forest path with
``Overlap(include_closure=True)`` does not have this limitation, which is
why the parity bench compares depth-1 regions only.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..mesh.entity import Ent
from ..obs.stats import AccumulateStats, CommProbe, GhostStats, SyncStats
from ..obs.tracer import trace_span
from ..parallel.codec import (
    decode_element_batch,
    decode_value_batch,
    encode_element_batch,
    encode_value_batch,
)
from .dmesh import DistributedMesh
from .fieldsync import DistributedField
from .ghosting import _unpack_ghost_batch
from .migration import _pack_element, _unpack_element
from .part import Part

_TAG_REQUEST = 10
_TAG_GHOST = 11
_TAG_SYNC = 21
_TAG_ACCUM = 22


def legacy_ghost_layer(
    dmesh: DistributedMesh,
    bridge_dim: int = 0,
    layers: int = 1,
    tags=(),
) -> GhostStats:
    """The pre-SF pull-protocol ghosting, frozen for the parity gate."""
    dim = dmesh.element_dim()
    if not 0 <= bridge_dim < dim:
        raise ValueError(
            f"bridge dimension must be below the element dimension {dim}"
        )
    probe = CommProbe(dmesh.counters)
    total = 0
    per_dim = [0, 0, 0, 0]
    with trace_span(dmesh.tracer, "ghost_layer", bridge_dim=bridge_dim):
        for layer in range(layers):
            with trace_span(dmesh.tracer, f"ghost_layer.layer{layer}"):
                created, created_per_dim = _one_layer(
                    dmesh, bridge_dim, tags, first=(layer == 0)
                )
            total += created
            for d in range(4):
                per_dim[d] += created_per_dim[d]
    return GhostStats(
        ghosts_created=total,
        layers=layers,
        per_dimension=tuple(per_dim),
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
        encoded_bytes=probe.encoded_bytes(),
        messages_coalesced=probe.messages_coalesced(),
    )


def _one_layer(
    dmesh: DistributedMesh, bridge_dim: int, tags, first: bool
) -> Tuple[int, List[int]]:
    dim = dmesh.element_dim()
    router = dmesh.router()

    # Phase 1: requests.  First layer: "send me the elements adjacent to the
    # entity we share".  Later layers: "send me the neighbors of the element
    # my ghost mirrors".
    for part in dmesh:
        if first:
            for ent in sorted(part.remotes):
                if ent.dim != bridge_dim:
                    continue
                for dest, dest_ent in sorted(part.remotes[ent].items()):
                    router.post(
                        part.pid, dest, _TAG_REQUEST, ("bridge", dest_ent)
                    )
        else:
            for ghost in sorted(part.ghosts):
                if ghost.dim != dim:
                    continue
                home_pid, home_ent = part.ghost_home[ghost]
                router.post(
                    part.pid, home_pid, _TAG_REQUEST, ("ring", home_ent)
                )

    requests = router.exchange()

    # Phase 2: responses with element bundles (deduplicated per requester).
    binary = dmesh.codec == "binary"
    router = dmesh.router()
    for pid in sorted(requests):
        part = dmesh.part(pid)
        queued: Dict[int, Set[Ent]] = {}
        batches: Dict[int, List[dict]] = {}
        for src, _tag, (kind, ent) in requests[pid]:
            if not part.mesh.has(ent):
                continue
            if kind == "bridge":
                elements = part.mesh.adjacent(ent, dim)
            else:
                elements = part.mesh.second_adjacent(ent, bridge_dim, dim)
            bucket = queued.setdefault(src, set())
            for element in elements:
                if part.is_ghost(element) or element in bucket:
                    continue
                bucket.add(element)
                bundle = _pack_element(part, element)
                bundle["tags"] = {
                    name: part.mesh.tag(name).get(element)
                    for name in tags
                    if part.mesh.tags.find(name) is not None
                }
                bundle["home"] = (part.pid, element)
                if binary:
                    batches.setdefault(src, []).append(bundle)
                else:
                    router.post(part.pid, src, _TAG_GHOST, bundle)
        for src, bundles in sorted(batches.items()):
            blob = encode_element_batch(bundles)
            dmesh.counters.add("net.bytes.encoded", len(blob))
            dmesh.counters.add("net.messages.coalesced", len(bundles))
            router.post(part.pid, src, _TAG_GHOST, blob)

    inboxes = router.exchange()
    created = 0
    per_dim = [0, 0, 0, 0]
    for pid in sorted(inboxes):
        part = dmesh.part(pid)
        for _src, _tag, payload in inboxes[pid]:
            if isinstance(payload, (bytes, bytearray)):
                n, _fresh = _unpack_ghost_batch(
                    part, decode_element_batch(payload), per_dim
                )
                created += n
            else:
                created += _unpack_ghost(part, payload, per_dim)
    dmesh.counters.add("ghosting.elements", created)
    return created, per_dim


def _unpack_ghost(part: Part, bundle: dict, per_dim: List[int]) -> int:
    """Create a ghost element bundle; returns 1 if a new ghost appeared."""
    mesh = part.mesh
    home_pid, home_ent = bundle["home"]
    element_gid = bundle["element"][1]
    if part.by_gid(bundle["element"][0], element_gid) is not None:
        return 0  # already present (real element or earlier ghost copy)

    before = [part.gid_index_set(d) for d in range(4)]
    element = _unpack_element(part, bundle)
    for d in range(4):
        for idx in part.gid_index_set(d) - before[d]:
            ghost = Ent(d, idx)
            per_dim[d] += 1
            part.ghosts.add(ghost)
            if ghost == element:
                part.ghost_home[ghost] = (home_pid, home_ent)
            else:
                part.ghost_home[ghost] = (home_pid, None)
    for name, value in bundle.get("tags", {}).items():
        if value is not None:
            mesh.tag(name).set(element, value)
    return 1


def legacy_synchronize(dfield: DistributedField) -> SyncStats:
    """The pre-SF owner→copy sync, frozen for the parity gate."""
    dmesh = dfield.dmesh
    probe = CommProbe(dmesh.counters)
    binary = dmesh.codec == "binary"
    sent = 0
    with trace_span(dmesh.tracer, "synchronize", field=dfield.name):
        router = dmesh.router()
        outbound: Dict[Tuple[int, int], list] = {}
        for part in dmesh:
            field = dfield.on(part.pid)
            for ent in sorted(part.remotes):
                if ent.dim != dfield.entity_dim or not part.owns(ent):
                    continue
                if not field.has(ent):
                    continue
                value = field.get(ent)
                for other_pid, other_ent in sorted(part.remotes[ent].items()):
                    if binary:
                        outbound.setdefault((part.pid, other_pid), []).append(
                            (other_ent, value)
                        )
                    else:
                        router.post(
                            part.pid, other_pid, _TAG_SYNC, (other_ent, value)
                        )
                    sent += 1
        for (src, dst), items in sorted(outbound.items()):
            blob = encode_value_batch(items)
            dmesh.counters.add("net.bytes.encoded", len(blob))
            dmesh.counters.add("net.messages.coalesced", len(items))
            router.post(src, dst, _TAG_SYNC, blob)
        inboxes = router.exchange()
        for pid in sorted(inboxes):
            field = dfield.on(pid)
            for _src, _tag, payload in inboxes[pid]:
                if isinstance(payload, (bytes, bytearray)):
                    for ent, value in decode_value_batch(payload):
                        field.set(ent, value)
                else:
                    ent, value = payload
                    field.set(ent, value)
    dmesh.counters.add("fieldsync.values", sent)
    return SyncStats(
        values_sent=sent,
        entity_dim=dfield.entity_dim,
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
        encoded_bytes=probe.encoded_bytes(),
        messages_coalesced=probe.messages_coalesced(),
    )


def legacy_accumulate(dfield: DistributedField) -> AccumulateStats:
    """The pre-SF copy→owner accumulation, frozen for the parity gate."""
    dmesh = dfield.dmesh
    probe = CommProbe(dmesh.counters)
    binary = dmesh.codec == "binary"
    with trace_span(dmesh.tracer, "accumulate", field=dfield.name):
        router = dmesh.router()
        sent = 0
        outbound: Dict[Tuple[int, int], list] = {}
        for part in dmesh:
            field = dfield.on(part.pid)
            for ent in sorted(part.remotes):
                if ent.dim != dfield.entity_dim or part.owns(ent):
                    continue
                if not field.has(ent):
                    continue
                owner = part.owner(ent)
                owner_ent = part.remotes[ent][owner]
                if binary:
                    outbound.setdefault((part.pid, owner), []).append(
                        (owner_ent, field.get(ent))
                    )
                else:
                    router.post(
                        part.pid, owner, _TAG_ACCUM,
                        (owner_ent, field.get(ent)),
                    )
                sent += 1
        for (src, dst), items in sorted(outbound.items()):
            blob = encode_value_batch(items)
            dmesh.counters.add("net.bytes.encoded", len(blob))
            dmesh.counters.add("net.messages.coalesced", len(items))
            router.post(src, dst, _TAG_ACCUM, blob)
        inboxes = router.exchange()
        for pid in sorted(inboxes):
            field = dfield.on(pid)
            for _src, _tag, payload in inboxes[pid]:
                if isinstance(payload, (bytes, bytearray)):
                    for ent, value in decode_value_batch(payload):
                        field.set(ent, field.get(ent) + value)
                else:
                    ent, value = payload
                    field.set(ent, field.get(ent) + value)
        sync = legacy_synchronize(dfield)
    return AccumulateStats(
        contributions=sent,
        synced=sync.values_sent,
        entity_dim=dfield.entity_dim,
        messages=probe.messages(),
        wire_bytes=probe.wire_bytes(),
        supersteps=probe.supersteps(),
        seconds=probe.seconds(),
        encoded_bytes=probe.encoded_bytes(),
        messages_coalesced=probe.messages_coalesced(),
    )
