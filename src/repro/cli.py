"""Command-line interface: ``python -m repro <command>``.

A small operational surface over the library, the kind an open-source
release ships for quick experiments without writing a driver script:

``info``
    Generate (or load) a mesh and print its structural statistics.
``partition``
    Partition a generated mesh with any method and report the balance
    signature (the Table-II columns).
``balance``
    Run the full ParMA pipeline on a generated mesh: baseline partition,
    multi-criteria improvement, before/after report.
``bench``
    Point at the benchmark suite (delegates to pytest).
``lint``
    Run the SPMD correctness lint (:mod:`repro.analysis`) over the package
    source (or explicit paths); exits nonzero on findings.
``analyze``
    Run the SPMD *flow* analysis (:mod:`repro.analysis.flow`): CFG +
    call-graph rank-taint dataflow with the SPMD101..SPMD105 rule family,
    ``--format=text|json|sarif`` output, and a committed-findings
    ``--baseline`` so CI fails only on *new* findings.
``trace``
    Run a workload script under an installed :class:`repro.obs.Tracer` and
    write a Chrome trace (``about:tracing`` / Perfetto loadable) plus a
    metrics JSON with the per-superstep part-to-part communication matrix.
``chaos``
    Run a step-structured workload script under the resilience harness:
    deterministic fault injection from a JSON :class:`repro.resilience
    .FaultPlan`, rotated checkpoints, and checkpoint/restart recovery.
    The script must define ``build() -> DistributedMesh`` and
    ``step(dmesh, i)``; an optional module-level ``NSTEPS`` sets the
    default epoch count.  Writes the deterministic recovery report (and a
    metrics JSON) to ``--out``.
``snapshot``
    Save, parallel-load, or inspect a ``repro.store/1`` snapshot store
    (:mod:`repro.store`): ``save`` partitions a generated mesh and writes
    a chunked epoch (differential when the store has a tip), ``load``
    restores it at any ``--parts`` via the star-forest redistribution and
    prints a deterministic parity signature (owned-gid digest + field
    checksums), ``inspect`` dumps the epoch chain.
``serve``
    Run a JSON job list through the multi-tenant mesh-job service
    (:mod:`repro.svc`): bounded admission, locality-aware gang placement
    over the declared machine, concurrent world-isolated execution with
    deadlines and fault-classified retries.  Writes the deterministic
    ``repro.svc/1`` service report plus a metrics JSON to ``--out``.
``submit``
    One-shot convenience over the same service: submit a single job
    described by flags to a fresh service, run it, print the outcome.
``couple``
    Run a coupled job graph (:mod:`repro.couple`) through the service:
    jobs plus dependency edges plus cross-job coupling channels.  Channel
    endpoints are co-scheduled into one round and exchange
    ``repro.couple/1`` field frames; dependents wait for (and are
    cancelled by) their upstreams.  Same outputs as ``serve``.

``balance`` accepts ``--sanitize`` to run the distributed pipeline with the
runtime sanitizers on (alias freeze proxies on the part network).

All meshes are generated on the fly (``--kind box|rect|aaa|wing``) since
the native mesh format is a library-level feature; ``--save`` writes the
result as VTK for visualization.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

import numpy as np


def _build_mesh(args):
    from repro.mesh import box_tet, rect_tri
    from repro.workloads import aaa_mesh, wing_mesh

    if args.kind == "rect":
        return rect_tri(args.n)
    if args.kind == "box":
        return box_tet(args.n)
    if args.kind == "aaa":
        return aaa_mesh(n=max(args.n // 2, 2))
    if args.kind == "wing":
        return wing_mesh(n=args.n)
    raise SystemExit(f"unknown mesh kind {args.kind!r}")


def _maybe_save(mesh, args, cell_data=None):
    if args.save:
        from repro.mesh import write_vtk

        path = write_vtk(mesh, args.save, cell_data)
        print(f"wrote {path}")


def cmd_info(args) -> int:
    from repro.mesh import mesh_stats
    from repro.mesh.verify import verify

    mesh = _build_mesh(args)
    stats = mesh_stats(mesh)
    print(stats.summary())
    verify(mesh)
    print("mesh verified")
    _maybe_save(mesh, args)
    return 0


def cmd_partition(args) -> int:
    from repro.partitioners import (
        dual_graph,
        entity_counts_from_assignment,
        imbalance,
        partition,
    )

    mesh = _build_mesh(args)
    start = time.perf_counter()
    assignment = partition(
        mesh, args.parts, method=args.method, seed=args.seed, eps=args.eps
    )
    elapsed = time.perf_counter() - start
    counts = entity_counts_from_assignment(mesh, assignment, args.parts)
    imb = imbalance(counts) * 100
    cut = dual_graph(mesh).edge_cut(assignment)
    print(
        f"{args.method} to {args.parts} parts in {elapsed:.2f}s: "
        f"edge cut {cut}"
    )
    print(
        f"imbalance%  Vtx {imb[0]:.2f}  Edge {imb[1]:.2f}  "
        f"Face {imb[2]:.2f}  Rgn {imb[3]:.2f}"
    )
    if args.save:
        elements = list(mesh.entities(mesh.dim()))
        cell_data = {
            "part": {e: float(p) for e, p in zip(elements, assignment)}
        }
        _maybe_save(mesh, args, cell_data)
    return 0


def cmd_balance(args) -> int:
    from repro.core import ParMA, imbalances
    from repro.partition import distribute
    from repro.partitioners import partition

    mesh = _build_mesh(args)
    assignment = partition(
        mesh, args.parts, method=args.method, seed=args.seed, eps=args.eps
    )
    dmesh = distribute(
        mesh, assignment, nparts=args.parts, sanitize=args.sanitize,
        codec=args.codec,
    )
    balancer = ParMA(dmesh)
    before = (imbalances(dmesh.entity_counts()) - 1) * 100
    print(
        f"before ParMA: Vtx {before[0]:.2f}%  Edge {before[1]:.2f}%  "
        f"Face {before[2]:.2f}%  Rgn {before[3]:.2f}%"
    )
    stats = balancer.improve(args.priorities, tol=args.tol)
    print(stats.summary())
    after = (imbalances(dmesh.entity_counts()) - 1) * 100
    print(
        f"after ParMA:  Vtx {after[0]:.2f}%  Edge {after[1]:.2f}%  "
        f"Face {after[2]:.2f}%  Rgn {after[3]:.2f}%"
    )
    dmesh.verify()
    return 0


def cmd_bench(_args) -> int:
    print("run:  pytest benchmarks/ --benchmark-only")
    print("scale with:  REPRO_BENCH_SCALE=medium|large")
    return 0


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis.lint import (
        default_target,
        format_json,
        format_text,
        run_paths,
    )

    paths = [Path(p) for p in args.paths] or [default_target()]
    try:
        findings = run_paths(paths)
    except OSError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    formatter = format_json if args.format == "json" else format_text
    print(formatter(findings))
    return 1 if findings else 0


def cmd_analyze(args) -> int:
    from repro.analysis.flow import main as analyze_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv.append("--write-baseline")
    return analyze_main(argv)


def cmd_trace(args) -> int:
    import runpy
    from pathlib import Path

    from repro import obs
    from repro.parallel import GLOBAL

    script = Path(args.script)
    if not script.exists():
        print(f"repro trace: no such script: {script}", file=sys.stderr)
        return 2
    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)

    tracer = obs.Tracer(counters=GLOBAL)
    # Install as the session default so DistributedMesh / spmd constructed
    # inside the (unmodified) workload pick it up.
    obs.install(tracer)
    tracer.bind(pid=0, tid=0)
    try:
        with tracer.span("workload", script=str(script)):
            runpy.run_path(str(script), run_name="__main__")
    finally:
        obs.uninstall()

    stem = script.stem
    trace_path = outdir / f"{stem}.trace.json"
    metrics_path = outdir / f"{stem}.metrics.json"
    obs.write_chrome_trace(tracer, trace_path)
    obs.write_metrics(metrics_path, tracer=tracer, counters=GLOBAL)
    print(obs.text_report(tracer, counters=GLOBAL))
    print(f"chrome trace: {trace_path}  (load in about:tracing / Perfetto)")
    print(f"metrics json: {metrics_path}")
    return 0


def cmd_chaos(args) -> int:
    import json
    import runpy
    from pathlib import Path

    from repro import obs
    from repro.parallel import GLOBAL
    from repro.resilience import (
        CheckpointManager,
        FaultPlan,
        FaultPlanError,
        RecoveryExhaustedError,
        resilient_spmd,
    )

    script = Path(args.script)
    if not script.exists():
        print(f"repro chaos: no such script: {script}", file=sys.stderr)
        return 2
    module = runpy.run_path(str(script), run_name="__repro_chaos__")
    build = module.get("build")
    step = module.get("step")
    if not callable(build) or not callable(step):
        print(
            f"repro chaos: {script} must define build() and step(dmesh, i)",
            file=sys.stderr,
        )
        return 2
    nsteps = args.steps if args.steps is not None else module.get("NSTEPS")
    if nsteps is None:
        print(
            "repro chaos: pass --steps or define NSTEPS in the script",
            file=sys.stderr,
        )
        return 2

    faults = None
    if args.faults:
        try:
            faults = FaultPlan.from_json(Path(args.faults))
        except (OSError, FaultPlanError) as exc:
            print(f"repro chaos: bad fault plan: {exc}", file=sys.stderr)
            return 2

    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    ckdir = Path(args.checkpoint_dir) if args.checkpoint_dir else (
        outdir / "checkpoints"
    )
    manager = CheckpointManager(
        ckdir, keep=args.keep, backend=getattr(args, "backend", "dmesh")
    )

    tracer = obs.Tracer(counters=GLOBAL)
    obs.install(tracer)
    tracer.bind(pid=0, tid=0)
    status = 0
    try:
        with tracer.span("chaos", script=str(script)):
            dmesh, report = resilient_spmd(
                build,
                step,
                int(nsteps),
                checkpoints=manager,
                checkpoint_every=args.checkpoint_every,
                faults=faults,
                max_retries=args.max_retries,
            )
        dmesh.verify()
    except RecoveryExhaustedError as exc:
        report = exc.report
        print(f"repro chaos: {exc}", file=sys.stderr)
        status = 1
    finally:
        obs.uninstall()

    report_path = outdir / f"{script.stem}.resilience.json"
    report_path.write_text(
        json.dumps(report.to_dict(), indent=1, sort_keys=True) + "\n"
    )
    metrics_path = outdir / f"{script.stem}.metrics.json"
    obs.write_metrics(metrics_path, tracer=tracer, counters=GLOBAL)
    print(report.summary())
    print(f"recovery report: {report_path}")
    print(f"metrics json:    {metrics_path}")
    return status


def cmd_snapshot(args) -> int:
    import json
    from pathlib import Path

    from repro.store import (
        CorruptSnapshotError,
        SnapshotStore,
        field_checksum,
        owned_gid_set,
    )

    store = SnapshotStore(Path(args.store), chunk_records=args.chunk_records)
    if args.action == "save":
        from repro.partition import DistributedField, distribute
        from repro.partitioners import partition

        mesh = _build_mesh(args)
        nparts = args.parts if args.parts else 4
        assignment = partition(
            mesh, nparts, method=args.method, seed=args.seed
        )
        dmesh = distribute(mesh, [int(a) for a in assignment])
        coord = DistributedField(dmesh, "coord", 0, 3)
        for part in dmesh:
            local = coord.on(part.pid)
            for v in part.mesh.entities(0):
                local.set(v, part.mesh.coords(v))
        info = store.save(dmesh, [coord], full=args.full)
        print(
            json.dumps(
                {"saved": info.to_dict(), "store": str(store.root)},
                indent=1,
                sort_keys=True,
            )
        )
        return 0
    if args.action == "load":
        try:
            dmesh, fields, stats = store.load_at(
                nparts=args.parts, epoch=args.epoch
            )
            dmesh.verify()
        except CorruptSnapshotError as exc:
            print(f"repro snapshot: {exc}", file=sys.stderr)
            return 1
        dim = dmesh.element_dim()
        signature = {
            "nparts": dmesh.nparts,
            "elements": len(owned_gid_set(dmesh, dim)),
            "owned_gids_sha256": __import__("hashlib").sha256(
                json.dumps(sorted(owned_gid_set(dmesh, dim))).encode()
            ).hexdigest(),
            "fields": {
                name: round(field_checksum(dmesh, dfield), 9)
                for name, dfield in sorted(fields.items())
            },
            "stats": stats.to_dict(),
        }
        print(json.dumps(signature, indent=1, sort_keys=True))
        return 0
    # inspect
    print(json.dumps(store.inspect(), indent=1, sort_keys=True))
    return 0


def _build_service(args):
    from repro.parallel import MachineTopology
    from repro.svc import MeshJobService

    machine = MachineTopology(
        nodes=args.nodes, cores_per_node=args.cores_per_node
    )
    return MeshJobService(
        machine,
        capacity=args.capacity,
        aging=args.aging,
        seed=args.seed,
        timeout=args.timeout,
        snapshot_cache=args.snapshot_cache,
    )


def cmd_serve(args) -> int:
    import json
    from pathlib import Path

    from repro.parallel import TopologyError
    from repro.svc import JobSpecError, load_specs

    jobs_path = Path(args.jobs)
    if not jobs_path.exists():
        print(f"repro serve: no such jobs file: {jobs_path}", file=sys.stderr)
        return 2
    try:
        specs = load_specs(json.loads(jobs_path.read_text()))
    except (json.JSONDecodeError, JobSpecError, ValueError) as exc:
        print(f"repro serve: bad jobs file: {exc}", file=sys.stderr)
        return 2
    try:
        service = _build_service(args)
    except TopologyError as exc:
        print(f"repro serve: bad machine: {exc}", file=sys.stderr)
        return 2

    report = service.serve(specs)
    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    report_path = outdir / "service_report.json"
    report.write(report_path)
    metrics_path = outdir / "service_metrics.json"
    service.write_metrics(metrics_path)
    print(report.summary())
    print(service.latency_stats().summary())
    print(f"service report: {report_path}")
    print(f"metrics json:   {metrics_path}")
    completed = report.totals.get("completed", 0)
    return 0 if completed == report.totals.get("submitted", 0) else 1


def cmd_couple(args) -> int:
    import json
    from pathlib import Path

    from repro.couple import GraphError, JobGraph
    from repro.parallel import TopologyError
    from repro.svc import JobSpecError

    graph_path = Path(args.graph)
    if not graph_path.exists():
        print(
            f"repro couple: no such graph file: {graph_path}", file=sys.stderr
        )
        return 2
    try:
        graph = JobGraph.from_dict(json.loads(graph_path.read_text()))
    except (json.JSONDecodeError, GraphError, ValueError) as exc:
        print(f"repro couple: bad graph file: {exc}", file=sys.stderr)
        return 2
    try:
        service = _build_service(args)
    except TopologyError as exc:
        print(f"repro couple: bad machine: {exc}", file=sys.stderr)
        return 2

    try:
        report = service.serve_graph(graph)
    except JobSpecError as exc:
        print(f"repro couple: {exc}", file=sys.stderr)
        return 2
    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    report_path = outdir / "service_report.json"
    report.write(report_path)
    metrics_path = outdir / "service_metrics.json"
    service.write_metrics(metrics_path)
    print(report.summary())
    print(service.latency_stats().summary())
    print(f"service report: {report_path}")
    print(f"metrics json:   {metrics_path}")
    completed = report.totals.get("completed", 0)
    return 0 if completed == report.totals.get("submitted", 0) else 1


def cmd_submit(args) -> int:
    import json
    from pathlib import Path

    from repro.parallel import TopologyError
    from repro.resilience import FaultPlan, FaultPlanError
    from repro.svc import JobSpec, JobSpecError, PlacementError, RetryPolicy

    fault_plan = None
    if args.faults:
        try:
            fault_plan = FaultPlan.from_json(Path(args.faults))
        except (OSError, FaultPlanError) as exc:
            print(f"repro submit: bad fault plan: {exc}", file=sys.stderr)
            return 2
    try:
        spec = JobSpec(
            name=args.name,
            workload=args.workload,
            parts=args.parts,
            mesh_n=args.n,
            steps=args.steps,
            tenant=args.tenant,
            priority=args.priority,
            deadline=args.deadline,
            retry=RetryPolicy(max_retries=args.retries),
            fault_plan=fault_plan,
        )
        service = _build_service(args)
        service.submit(spec)
    except (JobSpecError, PlacementError, TopologyError) as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 2
    service.run_until_idle()
    outcome = service.outcome(spec.name)
    print(json.dumps(outcome.to_dict(wall_free=False), indent=1, sort_keys=True))
    return 0 if outcome.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PUMI + ParMA reproduction — command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_mesh_args(p):
        p.add_argument(
            "--kind", default="box", choices=("rect", "box", "aaa", "wing")
        )
        p.add_argument("--n", type=int, default=8, help="mesh resolution")
        p.add_argument("--save", default=None, help="write VTK to this path")

    p_info = sub.add_parser("info", help="mesh statistics")
    add_mesh_args(p_info)
    p_info.set_defaults(fn=cmd_info)

    def add_partition_args(p):
        add_mesh_args(p)
        p.add_argument("--parts", type=int, default=8)
        p.add_argument(
            "--method",
            default="hypergraph",
            choices=("hypergraph", "graph", "rcb", "rib"),
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--eps", type=float, default=0.05)

    p_part = sub.add_parser("partition", help="partition and score a mesh")
    add_partition_args(p_part)
    p_part.set_defaults(fn=cmd_partition)

    p_bal = sub.add_parser("balance", help="baseline + ParMA improvement")
    add_partition_args(p_bal)
    p_bal.add_argument("--priorities", default="Vtx > Rgn")
    p_bal.add_argument("--tol", type=float, default=0.05)
    p_bal.add_argument(
        "--sanitize",
        action="store_true",
        help="run with the runtime sanitizers on (alias freeze proxies)",
    )
    p_bal.add_argument(
        "--codec",
        choices=("binary", "pickle"),
        default="binary",
        help="wire codec for the part networks (pickle = A/B escape hatch)",
    )
    p_bal.set_defaults(fn=cmd_balance)

    p_bench = sub.add_parser("bench", help="how to run the benchmarks")
    p_bench.set_defaults(fn=cmd_bench)

    p_lint = sub.add_parser("lint", help="SPMD correctness lint (SPMD001..)")
    p_lint.add_argument(
        "paths", nargs="*", help="files/dirs (default: the repro package)"
    )
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.set_defaults(fn=cmd_lint)

    p_an = sub.add_parser(
        "analyze", help="SPMD flow analysis (SPMD101..SPMD105)"
    )
    p_an.add_argument(
        "paths", nargs="*", help="files/dirs (default: the repro package)"
    )
    p_an.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    p_an.add_argument(
        "--baseline",
        default=None,
        help="accepted-findings file (repro.analysis/1)",
    )
    p_an.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings",
    )
    p_an.set_defaults(fn=cmd_analyze)

    p_trace = sub.add_parser(
        "trace", help="run a workload script under the tracer"
    )
    p_trace.add_argument("script", help="python workload script to run")
    p_trace.add_argument(
        "--out", default="trace-out", help="output directory (created)"
    )
    p_trace.set_defaults(fn=cmd_trace)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a workload under fault injection + checkpoint/restart",
    )
    p_chaos.add_argument(
        "script", help="workload script defining build() and step(dmesh, i)"
    )
    p_chaos.add_argument(
        "--faults", default=None, help="JSON fault-plan file (default: none)"
    )
    p_chaos.add_argument(
        "--steps",
        type=int,
        default=None,
        help="epoch count (default: the script's NSTEPS)",
    )
    p_chaos.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint cadence in epochs (default: 1)",
    )
    p_chaos.add_argument(
        "--checkpoint-dir",
        default=None,
        help="checkpoint directory (default: <out>/checkpoints)",
    )
    p_chaos.add_argument(
        "--keep", type=int, default=3, help="checkpoints retained (default: 3)"
    )
    p_chaos.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="recovery budget before giving up (default: 3)",
    )
    p_chaos.add_argument(
        "--backend",
        choices=("dmesh", "store"),
        default="dmesh",
        help="checkpoint epoch format (store = chunked differential "
        "repro.store/1 epochs; default: dmesh)",
    )
    p_chaos.add_argument(
        "--out", default="chaos-out", help="output directory (created)"
    )
    p_chaos.set_defaults(fn=cmd_chaos)

    p_snap = sub.add_parser(
        "snapshot",
        help="save/load/inspect a repro.store/1 snapshot store",
    )
    p_snap.add_argument("action", choices=("save", "load", "inspect"))
    p_snap.add_argument(
        "--store", required=True, help="snapshot store directory"
    )
    p_snap.add_argument(
        "--kind", default="rect", choices=("rect", "box", "aaa", "wing")
    )
    p_snap.add_argument("--n", type=int, default=8, help="mesh resolution")
    p_snap.add_argument(
        "--parts",
        type=int,
        default=None,
        help="part count: writer parts for save (default 4), target parts "
        "for load (default: as saved)",
    )
    p_snap.add_argument(
        "--method",
        default="rcb",
        choices=("hypergraph", "graph", "rcb", "rib"),
        help="partitioner for save (default: rcb)",
    )
    p_snap.add_argument("--seed", type=int, default=0)
    p_snap.add_argument(
        "--chunk-records",
        type=int,
        default=256,
        help="records per chunk file (default: 256)",
    )
    p_snap.add_argument(
        "--full",
        action="store_true",
        help="force a full epoch on save (default: delta when possible)",
    )
    p_snap.add_argument(
        "--epoch",
        type=int,
        default=None,
        help="epoch index to load (default: the tip)",
    )
    p_snap.set_defaults(fn=cmd_snapshot)

    def add_service_args(p):
        p.add_argument(
            "--nodes", type=int, default=2, help="machine nodes (default: 2)"
        )
        p.add_argument(
            "--cores-per-node",
            type=int,
            default=4,
            help="cores per node (default: 4)",
        )
        p.add_argument(
            "--capacity",
            type=int,
            default=64,
            help="admission queue capacity (default: 64)",
        )
        p.add_argument(
            "--aging",
            type=int,
            default=1,
            help="priority aging per queued round (default: 1)",
        )
        p.add_argument(
            "--seed", type=int, default=0, help="placement tie-break seed"
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=30.0,
            help="per-rank SPMD watchdog seconds (default: 30)",
        )
        p.add_argument(
            "--snapshot-cache",
            default=None,
            metavar="DIR",
            help="warm-start snapshot cache directory (enables mesh-warm "
            "cache hits; default: off)",
        )

    p_serve = sub.add_parser(
        "serve", help="run a JSON job list through the mesh-job service"
    )
    p_serve.add_argument("--jobs", required=True, help="jobs JSON file")
    add_service_args(p_serve)
    p_serve.add_argument(
        "--out", default="serve-out", help="output directory (created)"
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_couple = sub.add_parser(
        "couple",
        help="run a coupled job graph (jobs + deps + channels) through "
        "the mesh-job service",
    )
    p_couple.add_argument(
        "--graph", required=True, help="job graph JSON file"
    )
    add_service_args(p_couple)
    p_couple.add_argument(
        "--out", default="couple-out", help="output directory (created)"
    )
    p_couple.set_defaults(fn=cmd_couple)

    p_submit = sub.add_parser(
        "submit", help="run one job through a fresh mesh-job service"
    )
    p_submit.add_argument("--name", default="job", help="job name")
    p_submit.add_argument(
        "--workload",
        default="stencil",
        help="registered workload name (see repro.workloads.job_workload_names)",
    )
    p_submit.add_argument(
        "--parts", type=int, default=2, help="gang size (default: 2)"
    )
    p_submit.add_argument(
        "--n", type=int, default=8, help="mesh resolution (default: 8)"
    )
    p_submit.add_argument(
        "--steps", type=int, default=2, help="superstep count (default: 2)"
    )
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall seconds per attempt (default: none)",
    )
    p_submit.add_argument(
        "--retries", type=int, default=0, help="retry budget (default: 0)"
    )
    p_submit.add_argument(
        "--faults", default=None, help="JSON fault-plan file (default: none)"
    )
    add_service_args(p_submit)
    p_submit.set_defaults(fn=cmd_submit)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
