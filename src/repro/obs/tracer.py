"""Superstep-aligned tracing for the simulated message-passing runtime.

The paper states every scaling claim in terms of per-phase time and
communication volume (run-time counters are one of PUMI's parallel control
utilities, Section II-D); this module measures the BSP simulation the same
way.  A :class:`Tracer` collects three kinds of evidence:

* a **span tree** — nested ``with tracer.span("migrate"):`` contexts record
  wall time, the perf-counter deltas attributable to the span, and the
  superstep interval the span covered;
* a **per-superstep communication matrix** — every
  :meth:`~repro.parallel.network.Network.exchange` closes one superstep and
  charges each delivered message to its ``(source part, destination part)``
  cell as one message plus its wire bytes (off-node traffic only carries
  bytes, matching the counter convention);
* **timelines** — named series of ``(superstep, value)`` samples, used by
  the ParMA loops to record imbalance over iterations.

A tracer is *disabled-cheap*: every runtime hook first checks a plain
attribute (``tracer is None`` at the call site, then ``tracer.enabled``), so
an untraced run pays one branch per exchange.  Attach a tracer explicitly
(``DistributedMesh(..., tracer=t)``, ``spmd(..., tracer=t)``) or install a
process-wide default with :func:`install` — constructors pick the default up
when no explicit tracer is given, which is how ``python -m repro trace``
instruments unmodified example scripts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # imported for annotations only: obs must stay cycle-free
    from ..parallel.perf import PerfCounters

#: One cell of a communication matrix: (message count, wire bytes).
CommCell = Tuple[int, int]
#: A communication matrix: {(src part, dst part): (messages, bytes)}.
CommMatrix = Dict[Tuple[int, int], CommCell]


@dataclass
class Span:
    """One timed region: name, wall interval, supersteps, counter deltas."""

    name: str
    pid: int = 0
    tid: int = 0
    t0: float = 0.0
    t1: float = 0.0
    superstep_start: int = 0
    superstep_end: int = 0
    args: Dict[str, Any] = field(default_factory=dict)
    counter_deltas: Dict[str, int] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0

    @property
    def supersteps(self) -> int:
        return self.superstep_end - self.superstep_start

    def walk(self):
        """Yield this span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with ``name``, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None


class _SpanContext:
    """Context manager pushing/popping one span on the thread's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._enter(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._tracer._exit(self._span)


class _NullContext:
    """Reentrant no-op context used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Collects spans, per-superstep communication matrices, and timelines.

    Parameters
    ----------
    counters:
        Optional :class:`~repro.parallel.perf.PerfCounters` registry; when
        given, each span records the counter deltas that occurred inside it.
    enabled:
        Start in the enabled state (default).  A disabled tracer keeps its
        hooks as cheap as no tracer at all — this is what the CI overhead
        gate measures.
    """

    def __init__(
        self,
        counters: Optional["PerfCounters"] = None,
        enabled: bool = True,
    ) -> None:
        self.counters = counters
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Completed root spans, in completion order.
        self.roots: List[Span] = []
        #: Closed supersteps: index -> communication matrix.
        self._supersteps: List[CommMatrix] = []
        #: Traffic of the superstep currently in progress.
        self._pending: CommMatrix = {}
        #: Named sample series: name -> [(superstep, value)].
        self._timelines: Dict[str, List[Tuple[int, float]]] = {}

    # -- enable / disable --------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- spans -------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def bind(self, pid: int = 0, tid: int = 0) -> None:
        """Set this thread's default trace-event ids (part, rank)."""
        self._local.pid = pid
        self._local.tid = tid

    def span(
        self,
        name: str,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
        **args: Any,
    ):
        """Open a nested timed region; usable as ``with tracer.span(...)``.

        ``pid``/``tid`` become the Chrome trace-event process/thread ids and
        conventionally mean *part* and *rank*.  They default to the
        enclosing span's ids (or this thread's :meth:`bind` values), so rank
        programs tag every span with their rank by binding once.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        stack = self._stack()
        if pid is None:
            pid = stack[-1].pid if stack else getattr(self._local, "pid", 0)
        if tid is None:
            tid = stack[-1].tid if stack else getattr(self._local, "tid", 0)
        return _SpanContext(self, Span(name=name, pid=pid, tid=tid, args=args))

    def _enter(self, span: Span) -> None:
        span.superstep_start = self.superstep_count()
        if self.counters is not None:
            span._counters_before = self.counters.counters()  # type: ignore[attr-defined]
        self._stack().append(span)
        span.t0 = time.perf_counter()

    def _exit(self, span: Span) -> None:
        span.t1 = time.perf_counter()
        span.superstep_end = self.superstep_count()
        if self.counters is not None:
            before = span.__dict__.pop("_counters_before", {})
            after = self.counters.counters()
            span.counter_deltas = {
                name: after[name] - before.get(name, 0)
                for name in sorted(after)
                if after[name] != before.get(name, 0)
            }
        stack = self._stack()
        # Tolerate mispaired exits defensively: pop back to this span.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- communication recording ------------------------------------------

    def on_message(self, src: int, dst: int, nbytes: int) -> None:
        """Charge one message to the in-progress superstep's matrix."""
        if not self.enabled:
            return
        with self._lock:
            count, total = self._pending.get((src, dst), (0, 0))
            self._pending[(src, dst)] = (count + 1, total + nbytes)

    def end_superstep(self) -> int:
        """Close the in-progress superstep; returns its index."""
        if not self.enabled:
            return len(self._supersteps)
        with self._lock:
            self._supersteps.append(self._pending)
            self._pending = {}
            return len(self._supersteps) - 1

    def superstep_count(self) -> int:
        """Number of closed supersteps (== index of the open one)."""
        with self._lock:
            return len(self._supersteps)

    def comm_matrix(self, superstep: Optional[int] = None) -> CommMatrix:
        """One superstep's matrix, or (default) the sum over all of them."""
        with self._lock:
            if superstep is not None:
                return dict(self._supersteps[superstep])
            total: Dict[Tuple[int, int], List[int]] = {}
            for matrix in self._supersteps:
                for pair, (count, nbytes) in matrix.items():
                    cell = total.setdefault(pair, [0, 0])
                    cell[0] += count
                    cell[1] += nbytes
            return {pair: (c, b) for pair, (c, b) in sorted(total.items())}

    def supersteps(self) -> List[CommMatrix]:
        """All closed supersteps' matrices, in superstep order."""
        with self._lock:
            return [dict(matrix) for matrix in self._supersteps]

    # -- timelines ---------------------------------------------------------

    def record_value(self, series: str, value: float) -> None:
        """Append one ``(current superstep, value)`` sample to ``series``."""
        if not self.enabled:
            return
        with self._lock:
            self._timelines.setdefault(series, []).append(
                (len(self._supersteps), float(value))
            )

    def timelines(self) -> Dict[str, List[Tuple[int, float]]]:
        with self._lock:
            return {name: list(samples) for name, samples in self._timelines.items()}

    # -- summaries ---------------------------------------------------------

    def total_messages(self) -> int:
        return sum(c for c, _b in self.comm_matrix().values())

    def total_wire_bytes(self) -> int:
        return sum(b for _c, b in self.comm_matrix().values())

    def __repr__(self) -> str:
        return (
            f"Tracer(enabled={self.enabled}, roots={len(self.roots)}, "
            f"supersteps={self.superstep_count()}, "
            f"messages={self.total_messages()})"
        )


# -- process-wide default tracer -------------------------------------------

_default_lock = threading.Lock()
_default: Optional[Tracer] = None


def install(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide default and return it.

    Constructors that take ``tracer=None`` (:class:`DistributedMesh`,
    :func:`spmd`) resolve the installed default at construction time, so
    installing before the workload runs instruments it without code changes.
    """
    global _default
    with _default_lock:
        _default = tracer
    return tracer


def uninstall() -> None:
    """Remove the installed default tracer (subsequent runs are untraced)."""
    global _default
    with _default_lock:
        _default = None


def current() -> Optional[Tracer]:
    """The installed default tracer, or ``None``."""
    return _default


def trace_span(tracer: Optional[Tracer], name: str, **args: Any):
    """``tracer.span(name)`` when tracing, a shared no-op context otherwise.

    The helper instrumented code calls so the disabled path costs one
    ``is None`` check and no allocation.
    """
    if tracer is None or not tracer.enabled:
        return _NULL_CONTEXT
    return tracer.span(name, **args)
