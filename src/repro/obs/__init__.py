"""Observability: superstep tracing, communication metrics, exporters.

The reproduction's equivalent of PUMI's "performance measurement" control
utility, grown into a subsystem: :class:`Tracer` records a per-rank span
tree, a per-superstep part-to-part communication matrix, and named
timelines; :mod:`repro.obs.export` renders them as Chrome trace-event JSON
(loadable in ``about:tracing``), strict metrics JSON, or an aligned text
report; :mod:`repro.obs.stats` holds the typed statistics the
distributed-mesh services return.

Typical explicit use::

    from repro import Tracer, obs

    tracer = Tracer(counters=dmesh.counters)
    dmesh.tracer = tracer
    with tracer.span("balance"):
        ParMA(dmesh).improve("Vtx > Rgn")
    obs.write_chrome_trace(tracer, "trace.json")
    obs.write_metrics("metrics.json", tracer, dmesh.counters)

or, for unmodified scripts, ``python -m repro trace <script.py>`` installs a
process-wide default tracer (:func:`install`) that ``DistributedMesh`` and
``spmd`` pick up automatically.

:mod:`repro.resilience` reports through the same channels: recovery runs
emit ``resilience.epoch``/``resilience.recover`` spans, the
``resilience.checkpoints``/``failures``/``recoveries`` counters, and a
``resilience.recoveries`` timeline (see ``python -m repro chaos``).
"""

from .export import (
    chrome_trace,
    comm_matrix_rows,
    metrics_dict,
    text_report,
    write_chrome_trace,
    write_metrics,
)
from .stats import (
    AccumulateStats,
    CommProbe,
    CommStats,
    GhostDeleteStats,
    GhostStats,
    LatencyStats,
    MigrateStats,
    SFStats,
    SyncStats,
    percentile,
)
from .tracer import (
    CommMatrix,
    Span,
    Tracer,
    current,
    install,
    trace_span,
    uninstall,
)

__all__ = [
    "AccumulateStats",
    "CommMatrix",
    "CommProbe",
    "CommStats",
    "GhostDeleteStats",
    "GhostStats",
    "LatencyStats",
    "MigrateStats",
    "SFStats",
    "Span",
    "SyncStats",
    "Tracer",
    "chrome_trace",
    "comm_matrix_rows",
    "current",
    "install",
    "metrics_dict",
    "percentile",
    "text_report",
    "trace_span",
    "uninstall",
    "write_chrome_trace",
    "write_metrics",
]
