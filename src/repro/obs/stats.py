"""Typed statistics returned by the distributed-mesh service entry points.

The services (:func:`~repro.partition.migration.migrate`,
:func:`~repro.partition.ghosting.ghost_layer` / ``delete_ghosts``,
:func:`~repro.partition.fieldsync.synchronize` / ``accumulate``) historically
returned bare ints, which made every perf claim ("migration moved less"
versus "migration moved the same but sent twice the bytes") unverifiable
from the caller's side.  They now return the dataclasses below, following
the :class:`~repro.core.improve.ImproveStats` /
:class:`~repro.core.merge_split.SplitStats` convention: a frozen record of
what the operation did (entities, per-dimension breakdown) and what it cost
(messages, wire bytes, supersteps, wall seconds), measured from the shared
perf-counter registry around the operation.

All of them expose ``summary()`` for human-readable one-liners and
``to_dict()`` for strict-JSON export (used by the ``BENCH_*.json`` metrics).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # imported for annotations only: obs must stay cycle-free
    from ..parallel.perf import PerfCounters

#: Counter names that constitute message traffic on the BSP network.
_MESSAGE_COUNTERS = (
    "net.messages.self",
    "net.messages.on_node",
    "net.messages.off_node",
)


class CommProbe:
    """Measures the communication charged to a counter registry in a window.

    Snapshot the registry at construction, call :meth:`messages` /
    :meth:`wire_bytes` / :meth:`supersteps` / :meth:`seconds` when the
    operation finished.  This is how the service entry points source their
    stats without threading a tracer through every call.
    """

    def __init__(self, counters: "PerfCounters") -> None:
        self._counters = counters
        self._before = counters.counters()
        self._t0 = time.perf_counter()

    def _delta(self, name: str) -> int:
        return self._counters.get(name) - self._before.get(name, 0)

    def messages(self) -> int:
        return sum(self._delta(name) for name in _MESSAGE_COUNTERS)

    def wire_bytes(self) -> int:
        return self._delta("net.bytes.off_node")

    def encoded_bytes(self) -> int:
        """Bytes of codec-encoded batch buffers built in the window."""
        return self._delta("net.bytes.encoded")

    def messages_coalesced(self) -> int:
        """Logical records folded into batch buffers in the window."""
        return self._delta("net.messages.coalesced")

    def supersteps(self) -> int:
        return self._delta("net.exchanges")

    def seconds(self) -> float:
        return time.perf_counter() - self._t0


@dataclass(frozen=True)
class CommStats:
    """Communication cost common to every distributed service."""

    messages: int = 0
    wire_bytes: int = 0
    supersteps: int = 0
    seconds: float = 0.0
    #: Bytes of codec-encoded batch buffers the operation built (zero on
    #: the pickle escape hatch, where no batches are encoded).
    encoded_bytes: int = 0
    #: Logical records coalesced into those batch buffers.
    messages_coalesced: int = 0
    #: Star-forest operations (bcast/reduce/fetch_and_op) the service
    #: executed; zero for purely local services.
    sf_ops: int = 0

    def to_dict(self) -> Dict:
        """Plain-dict form safe for ``json.dumps(..., allow_nan=False)``."""
        payload = asdict(self)
        for key, value in payload.items():
            if isinstance(value, tuple):
                payload[key] = list(value)
        return payload

    def _cost(self) -> str:
        return (
            f"{self.messages} msg, {self.wire_bytes} B, "
            f"{self.supersteps} superstep(s), {self.seconds:.4f}s"
        )


@dataclass(frozen=True)
class MigrateStats(CommStats):
    """Outcome of one :func:`~repro.partition.migration.migrate` call."""

    elements_moved: int = 0
    #: Closure entities packed onto the wire, per entity dimension.
    per_dimension: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def summary(self) -> str:
        return (
            f"migrate: {self.elements_moved} element(s) "
            f"(closure {list(self.per_dimension)}) [{self._cost()}]"
        )


@dataclass(frozen=True)
class GhostStats(CommStats):
    """Outcome of one :func:`~repro.partition.ghosting.ghost_layer` call."""

    ghosts_created: int = 0
    layers: int = 0
    #: Ghost entities created (elements plus closure), per dimension.
    per_dimension: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def summary(self) -> str:
        return (
            f"ghost_layer: {self.ghosts_created} ghost element(s) in "
            f"{self.layers} layer(s) (created {list(self.per_dimension)}) "
            f"[{self._cost()}]"
        )


@dataclass(frozen=True)
class GhostDeleteStats(CommStats):
    """Outcome of one :func:`~repro.partition.ghosting.delete_ghosts` call.

    Ghost deletion is purely local, so the communication fields are zero;
    they are kept for uniformity with the other services.
    """

    entities_removed: int = 0
    #: Ghost entities destroyed, per dimension.
    per_dimension: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def summary(self) -> str:
        return (
            f"delete_ghosts: {self.entities_removed} entity(ies) removed "
            f"(per dim {list(self.per_dimension)}) [{self.seconds:.4f}s]"
        )


@dataclass(frozen=True)
class SyncStats(CommStats):
    """Outcome of one :func:`~repro.partition.fieldsync.synchronize` call."""

    values_sent: int = 0
    entity_dim: int = 0

    def summary(self) -> str:
        return (
            f"synchronize(dim={self.entity_dim}): {self.values_sent} "
            f"value(s) [{self._cost()}]"
        )


@dataclass(frozen=True)
class AccumulateStats(CommStats):
    """Outcome of one :func:`~repro.partition.fieldsync.accumulate` call."""

    contributions: int = 0
    synced: int = 0
    entity_dim: int = 0

    @property
    def values_sent(self) -> int:
        """Total values on the wire: copy→owner sums plus owner→copy sync."""
        return self.contributions + self.synced

    def summary(self) -> str:
        return (
            f"accumulate(dim={self.entity_dim}): {self.contributions} "
            f"contribution(s) + {self.synced} sync value(s) [{self._cost()}]"
        )


@dataclass(frozen=True)
class SFStats(CommStats):
    """Outcome of one :class:`~repro.parallel.sf.StarForest` operation."""

    #: Which operation ran: ``"bcast"``, ``"reduce.<op>"``,
    #: ``"fetch_and_op.<op>"``.
    op: str = ""
    #: The forest's name (spans and counters quote the same string).
    forest: str = ""
    nroots: int = 0
    nleaves: int = 0
    #: Payload records processed (delivered leaf/root items, both
    #: directions for fetch_and_op).
    records: int = 0

    def summary(self) -> str:
        return (
            f"sf.{self.op}[{self.forest}]: {self.nroots} root(s) / "
            f"{self.nleaves} leaf(ves), {self.records} record(s) "
            f"[{self._cost()}]"
        )


def percentile(samples: "list[float]", q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    Deterministic given the sample multiset: sorts, then indexes at
    ``ceil(q/100 * n)`` (nearest-rank convention).  Raises ``ValueError``
    on an empty sample list or an out-of-range ``q``.
    """
    if not samples:
        raise ValueError("percentile of an empty sample list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = -(-int(q * len(ordered)) // 100)  # ceil(q/100 * n) without floats
    return ordered[max(rank, 1) - 1]


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution summary (count / mean / p50 / p95 / max).

    Built from raw wall-clock samples by :meth:`from_samples`; the serving
    tier reports job latencies this way and the throughput benchmark quotes
    the same record, so "p95" always means the same nearest-rank estimate.
    """

    count: int = 0
    total: float = 0.0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    max: float = 0.0

    @classmethod
    def from_samples(cls, samples: "list[float]") -> "LatencyStats":
        if not samples:
            return cls()
        values = [float(s) for s in samples]
        total = sum(values)
        return cls(
            count=len(values),
            total=total,
            mean=total / len(values),
            p50=percentile(values, 50.0),
            p95=percentile(values, 95.0),
            max=max(values),
        )

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
        }

    def summary(self) -> str:
        return (
            f"latency: n={self.count} mean={self.mean:.4f}s "
            f"p50={self.p50:.4f}s p95={self.p95:.4f}s max={self.max:.4f}s"
        )
