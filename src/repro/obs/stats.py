"""Typed statistics returned by the distributed-mesh service entry points.

The services (:func:`~repro.partition.migration.migrate`,
:func:`~repro.partition.ghosting.ghost_layer` / ``delete_ghosts``,
:func:`~repro.partition.fieldsync.synchronize` / ``accumulate``) historically
returned bare ints, which made every perf claim ("migration moved less"
versus "migration moved the same but sent twice the bytes") unverifiable
from the caller's side.  They now return the dataclasses below, following
the :class:`~repro.core.improve.ImproveStats` /
:class:`~repro.core.merge_split.SplitStats` convention: a frozen record of
what the operation did (entities, per-dimension breakdown) and what it cost
(messages, wire bytes, supersteps, wall seconds), measured from the shared
perf-counter registry around the operation.

All of them expose ``summary()`` for human-readable one-liners and
``to_dict()`` for strict-JSON export (used by the ``BENCH_*.json`` metrics).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # imported for annotations only: obs must stay cycle-free
    from ..parallel.perf import PerfCounters

#: Counter names that constitute message traffic on the BSP network.
_MESSAGE_COUNTERS = (
    "net.messages.self",
    "net.messages.on_node",
    "net.messages.off_node",
)


class CommProbe:
    """Measures the communication charged to a counter registry in a window.

    Snapshot the registry at construction, call :meth:`messages` /
    :meth:`wire_bytes` / :meth:`supersteps` / :meth:`seconds` when the
    operation finished.  This is how the service entry points source their
    stats without threading a tracer through every call.
    """

    def __init__(self, counters: "PerfCounters") -> None:
        self._counters = counters
        self._before = counters.counters()
        self._t0 = time.perf_counter()

    def _delta(self, name: str) -> int:
        return self._counters.get(name) - self._before.get(name, 0)

    def messages(self) -> int:
        return sum(self._delta(name) for name in _MESSAGE_COUNTERS)

    def wire_bytes(self) -> int:
        return self._delta("net.bytes.off_node")

    def encoded_bytes(self) -> int:
        """Bytes of codec-encoded batch buffers built in the window."""
        return self._delta("net.bytes.encoded")

    def messages_coalesced(self) -> int:
        """Logical records folded into batch buffers in the window."""
        return self._delta("net.messages.coalesced")

    def supersteps(self) -> int:
        return self._delta("net.exchanges")

    def seconds(self) -> float:
        return time.perf_counter() - self._t0


@dataclass(frozen=True)
class CommStats:
    """Communication cost common to every distributed service."""

    messages: int = 0
    wire_bytes: int = 0
    supersteps: int = 0
    seconds: float = 0.0
    #: Bytes of codec-encoded batch buffers the operation built (zero on
    #: the pickle escape hatch, where no batches are encoded).
    encoded_bytes: int = 0
    #: Logical records coalesced into those batch buffers.
    messages_coalesced: int = 0

    def to_dict(self) -> Dict:
        """Plain-dict form safe for ``json.dumps(..., allow_nan=False)``."""
        payload = asdict(self)
        for key, value in payload.items():
            if isinstance(value, tuple):
                payload[key] = list(value)
        return payload

    def _cost(self) -> str:
        return (
            f"{self.messages} msg, {self.wire_bytes} B, "
            f"{self.supersteps} superstep(s), {self.seconds:.4f}s"
        )


@dataclass(frozen=True)
class MigrateStats(CommStats):
    """Outcome of one :func:`~repro.partition.migration.migrate` call."""

    elements_moved: int = 0
    #: Closure entities packed onto the wire, per entity dimension.
    per_dimension: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def summary(self) -> str:
        return (
            f"migrate: {self.elements_moved} element(s) "
            f"(closure {list(self.per_dimension)}) [{self._cost()}]"
        )


@dataclass(frozen=True)
class GhostStats(CommStats):
    """Outcome of one :func:`~repro.partition.ghosting.ghost_layer` call."""

    ghosts_created: int = 0
    layers: int = 0
    #: Ghost entities created (elements plus closure), per dimension.
    per_dimension: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def summary(self) -> str:
        return (
            f"ghost_layer: {self.ghosts_created} ghost element(s) in "
            f"{self.layers} layer(s) (created {list(self.per_dimension)}) "
            f"[{self._cost()}]"
        )


@dataclass(frozen=True)
class GhostDeleteStats(CommStats):
    """Outcome of one :func:`~repro.partition.ghosting.delete_ghosts` call.

    Ghost deletion is purely local, so the communication fields are zero;
    they are kept for uniformity with the other services.
    """

    entities_removed: int = 0
    #: Ghost entities destroyed, per dimension.
    per_dimension: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def summary(self) -> str:
        return (
            f"delete_ghosts: {self.entities_removed} entity(ies) removed "
            f"(per dim {list(self.per_dimension)}) [{self.seconds:.4f}s]"
        )


@dataclass(frozen=True)
class SyncStats(CommStats):
    """Outcome of one :func:`~repro.partition.fieldsync.synchronize` call."""

    values_sent: int = 0
    entity_dim: int = 0

    def summary(self) -> str:
        return (
            f"synchronize(dim={self.entity_dim}): {self.values_sent} "
            f"value(s) [{self._cost()}]"
        )


@dataclass(frozen=True)
class AccumulateStats(CommStats):
    """Outcome of one :func:`~repro.partition.fieldsync.accumulate` call."""

    contributions: int = 0
    synced: int = 0
    entity_dim: int = 0

    @property
    def values_sent(self) -> int:
        """Total values on the wire: copy→owner sums plus owner→copy sync."""
        return self.contributions + self.synced

    def summary(self) -> str:
        return (
            f"accumulate(dim={self.entity_dim}): {self.contributions} "
            f"contribution(s) + {self.synced} sync value(s) [{self._cost()}]"
        )
