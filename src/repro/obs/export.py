"""Exporters: Chrome trace-event JSON, metrics JSON, aligned text report.

Three views over the same :class:`~repro.obs.tracer.Tracer`:

* :func:`chrome_trace` — the Chrome trace-event format (the JSON array of
  ``"ph": "X"`` complete events plus process/thread name metadata) that
  ``about:tracing`` / Perfetto load directly.  ``pid`` is the part and
  ``tid`` the rank a span ran for, per the repo convention.
* :func:`metrics_dict` — a strict-JSON document with the per-superstep
  part-to-part communication matrix, counters, timers, timelines and the
  span-tree summary.  ``BENCH_*.json`` files and ``python -m repro trace``
  both emit this.
* :func:`text_report` — an aligned, human-readable rendering of the same.

Strictness matters: ``json.dumps`` happily emits ``Infinity``, which is not
valid JSON and breaks downstream parsers, so every writer here passes
``allow_nan=False`` and timers serialize through
:meth:`~repro.parallel.perf.TimerStat.to_dict` (a never-fired timer's
``min`` becomes ``null`` instead of ``Infinity``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from .tracer import Span, Tracer

if TYPE_CHECKING:  # imported for annotations only: obs must stay cycle-free
    from ..parallel.perf import PerfCounters

#: Wall-clock origin subtracted from every event so timestamps start near 0.
def _origin(roots: List[Span]) -> float:
    return min((span.t0 for span in roots), default=0.0)


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's spans as a Chrome trace-event document (JSON-ready)."""
    events: List[Dict[str, Any]] = []
    origin = _origin(tracer.roots)
    ids = set()
    for root in tracer.roots:
        for span in root.walk():
            ids.add((span.pid, span.tid))
            args: Dict[str, Any] = {
                "superstep_start": span.superstep_start,
                "superstep_end": span.superstep_end,
            }
            args.update(span.args)
            if span.counter_deltas:
                args["counters"] = dict(span.counter_deltas)
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": (span.t0 - origin) * 1e6,
                    "dur": span.seconds * 1e6,
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": args,
                }
            )
    # Stable ordering: by start time, longer (outer) spans first on ties so
    # viewers nest children under parents deterministically.
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], -e["dur"]))
    meta: List[Dict[str, Any]] = []
    for pid, tid in sorted(ids):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"part {pid}"},
            }
        )
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"rank {tid}"},
            }
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write :func:`chrome_trace` to ``path`` as strict JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(tracer), indent=1, allow_nan=False)
    )
    return path


def _span_dict(span: Span) -> Dict[str, Any]:
    return {
        "name": span.name,
        "pid": span.pid,
        "tid": span.tid,
        "seconds": span.seconds,
        "superstep_start": span.superstep_start,
        "superstep_end": span.superstep_end,
        "args": dict(span.args),
        "counters": dict(span.counter_deltas),
        "children": [_span_dict(child) for child in span.children],
    }


def comm_matrix_rows(tracer: Tracer) -> List[Dict[str, Any]]:
    """Per-superstep matrices as flat rows: superstep, src, dst, messages, bytes."""
    rows: List[Dict[str, Any]] = []
    for step, matrix in enumerate(tracer.supersteps()):
        for (src, dst), (count, nbytes) in sorted(matrix.items()):
            rows.append(
                {
                    "superstep": step,
                    "src": src,
                    "dst": dst,
                    "messages": count,
                    "bytes": nbytes,
                }
            )
    return rows


def metrics_dict(
    tracer: Optional[Tracer] = None,
    counters: Optional[PerfCounters] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Collected metrics as one strict-JSON-safe document.

    Either argument may be omitted: a counters-only document is what the
    benchmark harness emits when no tracer ran, a tracer-only document is
    what a workload without a shared registry produces.
    """
    payload: Dict[str, Any] = {"schema": "repro.obs.metrics/1"}
    if counters is None and tracer is not None:
        counters = tracer.counters
    if tracer is not None:
        payload["supersteps"] = tracer.superstep_count()
        payload["comm_matrix"] = comm_matrix_rows(tracer)
        totals = tracer.comm_matrix()
        payload["comm_totals"] = {
            "messages": sum(c for c, _b in totals.values()),
            "wire_bytes": sum(b for _c, b in totals.values()),
            "pairs": len(totals),
        }
        payload["timelines"] = {
            name: [{"superstep": s, "value": v} for s, v in samples]
            for name, samples in sorted(tracer.timelines().items())
        }
        payload["spans"] = [_span_dict(root) for root in tracer.roots]
    if counters is not None:
        payload["counters"] = dict(sorted(counters.counters().items()))
        payload["timers"] = {
            name: stat.to_dict()
            for name, stat in sorted(counters.timers().items())
        }
    if extra:
        payload.update(extra)
    return payload


def write_metrics(
    path: Union[str, Path],
    tracer: Optional[Tracer] = None,
    counters: Optional[PerfCounters] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write :func:`metrics_dict` to ``path`` as strict JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            metrics_dict(tracer, counters, extra), indent=1, allow_nan=False
        )
    )
    return path


def _fmt_bytes(nbytes: int) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):.2f} MiB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):.2f} KiB"
    return f"{nbytes} B"


def text_report(
    tracer: Optional[Tracer] = None,
    counters: Optional[PerfCounters] = None,
    max_matrix_rows: int = 24,
) -> str:
    """Aligned human-readable report: spans, matrix summary, counters."""
    lines: List[str] = []
    if tracer is not None:
        lines.append(
            f"supersteps: {tracer.superstep_count()}   "
            f"messages: {tracer.total_messages()}   "
            f"wire: {_fmt_bytes(tracer.total_wire_bytes())}"
        )
        if tracer.roots:
            lines.append("")
            lines.append(f"{'span':<42} {'seconds':>10} {'steps':>6}")
            for root in tracer.roots:
                for depth, span in _walk_depth(root):
                    label = ("  " * depth + span.name)[:42]
                    lines.append(
                        f"{label:<42} {span.seconds:>10.4f} "
                        f"{span.supersteps:>6}"
                    )
        totals = tracer.comm_matrix()
        if totals:
            lines.append("")
            lines.append(
                f"{'src -> dst':<14} {'messages':>10} {'bytes':>12}"
            )
            shown = 0
            for (src, dst), (count, nbytes) in sorted(
                totals.items(), key=lambda kv: (-kv[1][1], -kv[1][0], kv[0])
            ):
                if shown >= max_matrix_rows:
                    lines.append(
                        f"... {len(totals) - shown} more pair(s) elided"
                    )
                    break
                lines.append(
                    f"{f'{src} -> {dst}':<14} {count:>10} {nbytes:>12}"
                )
                shown += 1
        timelines = tracer.timelines()
        if timelines:
            lines.append("")
            for name, samples in sorted(timelines.items()):
                last = samples[-1][1]
                lines.append(
                    f"timeline {name}: {len(samples)} sample(s), "
                    f"first={samples[0][1]:.4f} last={last:.4f}"
                )
    if counters is not None:
        snapshot = counters.counters()
        if snapshot:
            lines.append("")
            width = max(len(name) for name in snapshot)
            for name in sorted(snapshot):
                lines.append(f"{name:<{width}} {snapshot[name]:>12}")
        for name, stat in sorted(counters.timers().items()):
            lines.append(
                f"{name}: n={stat.count} total={stat.total:.6f}s "
                f"mean={stat.mean:.6f}s"
            )
    return "\n".join(lines)


def _walk_depth(span: Span, depth: int = 0):
    yield depth, span
    for child in span.children:
        yield from _walk_depth(child, depth + 1)
