"""`repro.store`: parallel incremental snapshot I/O (``repro.store/1``).

The canonical, part-count-agnostic snapshot layer (Hapla et al., arXiv
2004.08729): chunked CRC-validated codec frames with a SHA-256 chunk
manifest (:mod:`repro.store.format`), full/differential epoch chains with
deterministic compaction and star-forest repartition-on-load
(:mod:`repro.store.snapshot`), and a content-addressed warm-start cache
for the serving tier (:mod:`repro.store.cache`).  The resilience layer's
:class:`~repro.resilience.CheckpointManager` uses this as its ``store``
backend while still restoring legacy ``repro.dmesh/2`` checkpoints.
"""

from .format import (
    DEFAULT_CHUNK_RECORDS,
    FORMAT,
    CorruptSnapshotError,
    SnapshotState,
    apply_delta,
    diff_states,
    field_checksum,
    owned_gid_set,
    state_from_dmesh,
)
from .snapshot import EpochInfo, SnapshotStore, StoreStats
from .cache import (
    SnapshotCache,
    cache_key,
    current_cache,
    install_cache,
    uninstall_cache,
)

__all__ = [
    "DEFAULT_CHUNK_RECORDS",
    "FORMAT",
    "CorruptSnapshotError",
    "EpochInfo",
    "SnapshotCache",
    "SnapshotState",
    "SnapshotStore",
    "StoreStats",
    "apply_delta",
    "cache_key",
    "current_cache",
    "diff_states",
    "field_checksum",
    "install_cache",
    "owned_gid_set",
    "state_from_dmesh",
    "uninstall_cache",
]
