"""The ``repro.store/1`` on-disk snapshot format: canonical, chunked, hashed.

Hapla et al. (arXiv 2004.08729) make parallel mesh I/O scale by writing one
*canonical* on-disk layout — independent of the number of writing ranks —
that any number of reading ranks can consume in disjoint chunks.  This
module is that layout for a :class:`~repro.partition.dmesh.DistributedMesh`:

* **canonical records** — owned entities only, identified by global ids
  (vertices, elements) or sorted vertex-gid keys (tags, fields), sorted by
  that identity; two distributions of the same mesh at *any* part counts
  serialize to byte-identical records;
* **fixed-size chunks** — each section's record list is sharded into
  ``chunk_records``-sized chunks, one CRC-validated
  :mod:`repro.parallel.codec` frame per chunk file, so parallel readers
  deal chunks, not parts;
* **SHA-256 chunk manifest** — ``manifest.json`` names every chunk with
  its hash, record count and byte size; any integrity violation surfaces
  as a typed :class:`CorruptSnapshotError` naming the offending file and
  the full expected-vs-actual digests.

An epoch directory is self-describing: its manifest carries the format id,
``kind`` (``"full"`` or ``"delta"``), the parent epoch index for deltas,
the removal lists a delta applies, and the gid allocation floor.  See
:mod:`repro.store.snapshot` for the store that writes chains of epochs and
loads them in parallel at any part count.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..mesh.entity import Ent
from ..parallel import codec
from ..partition.dmesh import DistributedMesh
from ..partition.fieldsync import DistributedField
from ..partition.io import CorruptCheckpointError, _atomic_write_bytes, _sha256
from ..partition.migration import entity_key

__all__ = [
    "FORMAT",
    "MANIFEST",
    "DEFAULT_CHUNK_RECORDS",
    "CorruptSnapshotError",
    "SnapshotState",
    "state_from_dmesh",
    "diff_states",
    "apply_delta",
    "write_epoch",
    "read_epoch_manifest",
    "load_chunk",
    "epoch_sections",
    "owned_gid_set",
    "field_checksum",
]

#: Current snapshot format id, stored in every epoch manifest.
FORMAT = "repro.store/1"
MANIFEST = "manifest.json"
#: Default records per chunk; small enough that modest meshes shard into
#: several chunks (parallel readers need more chunks than ranks).
DEFAULT_CHUNK_RECORDS = 256

#: Section order is fixed; fields get synthetic ``field<i>`` section names
#: (field names are arbitrary strings, unsafe as file names).
_FIXED_SECTIONS = ("verts", "elems", "tags")


class CorruptSnapshotError(CorruptCheckpointError):
    """A ``repro.store/1`` epoch failed integrity validation.

    Subclasses :class:`~repro.partition.io.CorruptCheckpointError` so the
    checkpoint manager's validate/skip/fallback machinery treats corrupt
    store epochs exactly like corrupt legacy checkpoints.
    """


# ---------------------------------------------------------------------------
# canonical state
# ---------------------------------------------------------------------------


@dataclass
class SnapshotState:
    """The part-count-agnostic content of one snapshot epoch.

    ``verts`` maps vertex gid -> ``((x, y, z), (class_dim, class_tag))``;
    ``elems`` maps element gid -> bounding vertex gids in connectivity
    order; ``tags`` maps ``(name, dim, entity key)`` -> value; ``fields``
    maps field name -> ``{entity key: value array}``.  Ghost copies never
    appear (they are reconstructible runtime state), and shared entities
    appear exactly once.
    """

    element_dim: int = 2
    etype: int = -1
    gid_next: List[int] = field(default_factory=lambda: [0, 0, 0, 0])
    verts: Dict[int, Tuple[Tuple[float, float, float], Tuple[int, int]]] = (
        field(default_factory=dict)
    )
    elems: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    tags: Dict[Tuple[str, int, Tuple[int, ...]], Any] = field(
        default_factory=dict
    )
    fields: Dict[str, Dict[Tuple[int, ...], np.ndarray]] = field(
        default_factory=dict
    )
    #: field name -> (entity_dim, shape tuple)
    field_meta: Dict[str, Tuple[int, Tuple[int, ...]]] = field(
        default_factory=dict
    )

    def record_count(self) -> int:
        return (
            len(self.verts)
            + len(self.elems)
            + len(self.tags)
            + sum(len(bucket) for bucket in self.fields.values())
        )


def state_from_dmesh(
    dmesh: DistributedMesh, fields: Sequence[DistributedField] = ()
) -> SnapshotState:
    """Extract the canonical snapshot state of a distribution.

    Iterating parts in pid order and keeping the first holder of each
    global id makes the result deterministic; because every record is keyed
    by global identity and carries no part-local data, the same mesh
    distributed at 2 or 8 parts extracts to the *same* state — which is
    what makes differential epochs insensitive to migration.
    """
    dim = dmesh.element_dim()
    state = SnapshotState(element_dim=dim, gid_next=list(dmesh._gid_next))
    for part in dmesh:
        mesh = part.mesh
        core = mesh.core

        # Elements: one gid gather for the connectivity columns per part.
        ids = core.live_ids(dim)
        if len(ids):
            ghost_ids = sorted(g.idx for g in part.ghosts if g.dim == dim)
            if ghost_ids:
                ids = ids[~np.isin(ids, np.asarray(ghost_ids, dtype=ids.dtype))]
        if len(ids):
            etypes = np.unique(core.etype[dim][ids])
            for etype in etypes.tolist():
                if state.etype < 0:
                    state.etype = etype
                elif state.etype != etype:
                    raise ValueError(
                        "repro.store snapshots support single-element-type "
                        f"meshes, found both {state.etype} and {etype}"
                    )
            egids = part.gids_of(dim, ids)
            vert_gids = part.gid_array(0)[core.verts_matrix(dim, ids)]
            if (egids < 0).any() or (vert_gids < 0).any():
                missing = ids[egids < 0] if (egids < 0).any() else ids
                raise KeyError(
                    f"part {part.pid}: M{dim}_{int(missing[0])} has no global id"
                )
            elems = state.elems
            for egid, row in zip(egids.tolist(), vert_gids.tolist()):
                if egid not in elems:
                    elems[egid] = tuple(row)

        # Vertices: coordinates and classification, batch-gathered.
        vids = core.live_ids(0)
        if len(vids):
            ghost_ids = sorted(g.idx for g in part.ghosts if g.dim == 0)
            if ghost_ids:
                vids = vids[
                    ~np.isin(vids, np.asarray(ghost_ids, dtype=vids.dtype))
                ]
        if len(vids):
            vgids = part.gids_of(0, vids)
            if (vgids < 0).any():
                raise KeyError(
                    f"part {part.pid}: M0_{int(vids[vgids < 0][0])} "
                    "has no global id"
                )
            xyz_rows = mesh._coords[vids].tolist()
            gclass = mesh._gclass[0]
            verts = state.verts
            for idx, vgid, xyz in zip(vids.tolist(), vgids.tolist(), xyz_rows):
                if vgid not in verts:
                    cls = gclass.get(idx)
                    verts[vgid] = (
                        (float(xyz[0]), float(xyz[1]), float(xyz[2])),
                        (cls.dim, cls.tag) if cls is not None else (-1, -1),
                    )
        for name in part.mesh.tags.names():
            tag = part.mesh.tags.find(name)
            for ent, value in tag.items():
                if ent in part.ghosts or not part.mesh.has(ent):
                    continue
                state.tags.setdefault(
                    (name, ent.dim, entity_key(part, ent)), value
                )
    for dfield in fields:
        bucket = state.fields.setdefault(dfield.name, {})
        shape = next(iter(dfield.fields.values())).shape
        state.field_meta[dfield.name] = (dfield.entity_dim, tuple(shape))
        for part in dmesh:
            local = dfield.on(part.pid)
            for ent, value in local.items():
                # Migration deletes entities out from under runtime field
                # stores; stale handles have no gid and are not state.
                if (
                    ent in part.ghosts
                    or not part.mesh.has(ent)
                    or not part.has_gid(ent)
                ):
                    continue
                bucket.setdefault(entity_key(part, ent), np.asarray(value))
    return state


def _same_value(a: Any, b: Any) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    if type(a) is type(b):
        try:
            return bool(a == b)
        except Exception:  # unorderable/ambiguous values: fall through
            pass
    return codec.dumps(a) == codec.dumps(b)


def diff_states(
    parent: SnapshotState, current: SnapshotState
) -> Tuple[SnapshotState, Dict[str, Any]]:
    """``(upserts, removed)`` turning ``parent`` into ``current``.

    ``upserts`` is a sparse :class:`SnapshotState` holding only new or
    changed records; ``removed`` is the manifest-shaped removal dict
    (vertex gids, element gids, tag triples, field keys per name).  The
    diff is content-based, so it captures exactly the entities adaptation
    created/destroyed and the fields dirtied since the parent — a pure
    migration, which moves entities without changing them, leaves the
    vertex/element/tag columns untouched (field values are runtime state:
    one whose only holding part handed the entity away drops out of the
    canonical state, and the diff records that as a removal).
    """
    upserts = SnapshotState(
        element_dim=current.element_dim,
        etype=current.etype,
        gid_next=list(current.gid_next),
        field_meta=dict(current.field_meta),
    )
    removed: Dict[str, Any] = {
        "verts": sorted(set(parent.verts) - set(current.verts)),
        "elems": sorted(set(parent.elems) - set(current.elems)),
        "tags": sorted(
            [name, dim, list(key)]
            for (name, dim, key) in set(parent.tags) - set(current.tags)
        ),
        "fields": {
            name: keys
            for name in sorted(set(parent.fields) | set(current.fields))
            if (keys := sorted(
                list(key)
                for key in set(parent.fields.get(name, {}))
                - set(current.fields.get(name, {}))
            ))
        },
    }
    for gid, rec in current.verts.items():
        old = parent.verts.get(gid)
        if old is None or old != rec:
            upserts.verts[gid] = rec
    for gid, row in current.elems.items():
        old = parent.elems.get(gid)
        if old is None or old != row:
            upserts.elems[gid] = row
    for key, value in current.tags.items():
        old = parent.tags.get(key)
        if key not in parent.tags or not _same_value(old, value):
            upserts.tags[key] = value
    for name, bucket in current.fields.items():
        old_bucket = parent.fields.get(name, {})
        out = upserts.fields.setdefault(name, {})
        for key, value in bucket.items():
            old = old_bucket.get(key)
            if old is None or not _same_value(old, value):
                out[key] = value
    return upserts, removed


def apply_delta(
    state: SnapshotState, upserts: SnapshotState, removed: Dict[str, Any]
) -> None:
    """Apply one delta epoch (removals, then upserts) to ``state`` in place."""
    for gid in removed.get("verts", ()):
        state.verts.pop(int(gid), None)
    for gid in removed.get("elems", ()):
        state.elems.pop(int(gid), None)
    for name, dim, key in removed.get("tags", ()):
        state.tags.pop((name, int(dim), tuple(int(g) for g in key)), None)
    for name, keys in removed.get("fields", {}).items():
        bucket = state.fields.get(name)
        if bucket:
            for key in keys:
                bucket.pop(tuple(int(g) for g in key), None)
    state.element_dim = upserts.element_dim
    state.etype = upserts.etype if upserts.etype >= 0 else state.etype
    state.gid_next = list(upserts.gid_next)
    state.verts.update(upserts.verts)
    state.elems.update(upserts.elems)
    state.tags.update(upserts.tags)
    # Field set follows the delta's meta: dropped fields disappear.
    state.field_meta = dict(upserts.field_meta)
    for name in list(state.fields):
        if name not in state.field_meta:
            del state.fields[name]
    for name, bucket in upserts.fields.items():
        state.fields.setdefault(name, {}).update(bucket)


# ---------------------------------------------------------------------------
# chunked records on disk
# ---------------------------------------------------------------------------


def _section_records(state: SnapshotState) -> Dict[str, List[Any]]:
    """All sections as canonically sorted codec-encodable record lists."""
    sections: Dict[str, List[Any]] = {
        "verts": [
            [gid, list(xyz), cdim, ctag]
            for gid, (xyz, (cdim, ctag)) in sorted(state.verts.items())
        ],
        "elems": [
            [gid, list(row)] for gid, row in sorted(state.elems.items())
        ],
        "tags": [
            [name, dim, list(key), value]
            for (name, dim, key), value in sorted(
                state.tags.items(), key=lambda item: item[0]
            )
        ],
    }
    for i, name in enumerate(sorted(state.field_meta)):
        sections[f"field{i}"] = [
            [list(key), np.asarray(value)]
            for key, value in sorted(
                state.fields.get(name, {}).items(), key=lambda kv: kv[0]
            )
        ]
    return sections


def write_epoch(
    path: Union[str, Path],
    state: SnapshotState,
    *,
    kind: str = "full",
    index: int = 0,
    parent: Optional[int] = None,
    removed: Optional[Dict[str, Any]] = None,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    nparts: int = 1,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write one epoch directory atomically; returns its manifest.

    The directory is staged as ``<path>.tmp`` and renamed into place only
    after every chunk and the manifest are durably written.  All content is
    byte-deterministic: sorted records, fixed chunking, ``sort_keys`` JSON,
    no timestamps.
    """
    path = Path(path)
    staging = path.with_name(path.name + ".tmp")
    if staging.exists():
        import shutil

        shutil.rmtree(staging)
    staging.mkdir(parents=True)
    sections = _section_records(state)
    manifest: Dict[str, Any] = {
        "format": FORMAT,
        "kind": kind,
        "index": int(index),
        "parent": None if parent is None else int(parent),
        "element_dim": int(state.element_dim),
        "etype": int(state.etype),
        "gid_next": [int(g) for g in state.gid_next],
        "nparts": int(nparts),
        "chunk_records": int(chunk_records),
        "fields": [
            {
                "name": name,
                "entity_dim": int(state.field_meta[name][0]),
                "shape": list(state.field_meta[name][1]),
                "section": f"field{i}",
            }
            for i, name in enumerate(sorted(state.field_meta))
        ],
        "sections": {},
        "payload_bytes": 0,
        "records": 0,
    }
    for section in sorted(sections):
        records = sections[section]
        chunks: List[Dict[str, Any]] = []
        for ci in range(0, max(1, len(records)), chunk_records):
            batch = records[ci : ci + chunk_records]
            if not batch and chunks:
                break
            blob = codec.dumps(batch)
            name = f"{section}-{len(chunks):06d}.bin"
            _atomic_write_bytes(staging / name, blob)
            chunks.append(
                {
                    "file": name,
                    "sha256": _sha256(blob),
                    "count": len(batch),
                    "bytes": len(blob),
                }
            )
            manifest["payload_bytes"] += len(blob)
            manifest["records"] += len(batch)
        manifest["sections"][section] = chunks
    if kind == "delta":
        manifest["removed"] = removed or {
            "verts": [],
            "elems": [],
            "tags": [],
            "fields": {},
        }
    if extra:
        manifest["extra"] = extra
    _atomic_write_bytes(
        staging / MANIFEST,
        json.dumps(manifest, indent=1, sort_keys=True).encode(),
    )
    if path.exists():
        import shutil

        shutil.rmtree(path)
    os.replace(staging, path)
    return manifest


def read_epoch_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and schema-check one epoch manifest.

    Raises :class:`CorruptSnapshotError` naming the manifest file on any
    missing file, bad JSON, wrong format id, or missing key.
    """
    path = Path(path)
    manifest_path = path / MANIFEST
    if not manifest_path.is_file():
        raise CorruptSnapshotError(f"{path}: missing {MANIFEST}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CorruptSnapshotError(
            f"{manifest_path}: unreadable manifest: {exc}"
        ) from None
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT:
        raise CorruptSnapshotError(
            f"{manifest_path}: unsupported snapshot format "
            f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r} "
            f"(expected {FORMAT!r})"
        )
    for key in (
        "kind", "index", "element_dim", "etype", "gid_next", "sections",
    ):
        if key not in manifest:
            raise CorruptSnapshotError(
                f"{manifest_path}: manifest misses {key!r}"
            )
    if manifest["kind"] == "delta" and manifest.get("parent") is None:
        raise CorruptSnapshotError(
            f"{manifest_path}: delta epoch names no parent"
        )
    return manifest


def load_chunk(
    path: Union[str, Path], entry: Dict[str, Any]
) -> Tuple[List[Any], int]:
    """Read, hash-validate and decode one chunk; ``(records, bytes read)``.

    Integrity errors name the offending file and quote the full
    expected-vs-actual SHA-256 digests, so a corrupt chunk is directly
    actionable from the exception alone.
    """
    path = Path(path)
    chunk_path = path / entry["file"]
    if not chunk_path.is_file():
        raise CorruptSnapshotError(f"{path}: missing chunk {entry['file']}")
    data = chunk_path.read_bytes()
    actual = _sha256(data)
    if actual != entry["sha256"]:
        raise CorruptSnapshotError(
            f"{chunk_path}: integrity failure: "
            f"sha256 {actual} != manifest {entry['sha256']}"
        )
    try:
        records = codec.loads(data)
    except Exception as exc:
        raise CorruptSnapshotError(
            f"{chunk_path}: undecodable chunk: {exc}"
        ) from None
    if not isinstance(records, list) or len(records) != int(entry["count"]):
        raise CorruptSnapshotError(
            f"{chunk_path}: chunk carries "
            f"{len(records) if isinstance(records, list) else '?'} record(s) "
            f"where the manifest promises {entry['count']}"
        )
    return records, len(data)


def epoch_sections(manifest: Dict[str, Any]) -> List[Tuple[str, int, Dict]]:
    """Flatten one manifest's chunk table as ``(section, ci, entry)`` rows."""
    out: List[Tuple[str, int, Dict]] = []
    for section in sorted(manifest["sections"]):
        for ci, entry in enumerate(manifest["sections"][section]):
            out.append((section, ci, entry))
    return out


def _field_name_of(manifest: Dict[str, Any], section: str) -> Optional[str]:
    for meta in manifest.get("fields", []):
        if meta["section"] == section:
            return meta["name"]
    return None


def state_from_records(
    manifest: Dict[str, Any],
    section_records: Dict[str, List[Any]],
) -> SnapshotState:
    """Rebuild a (possibly sparse) state from decoded section records."""
    state = SnapshotState(
        element_dim=int(manifest["element_dim"]),
        etype=int(manifest["etype"]),
        gid_next=[int(g) for g in manifest["gid_next"]],
    )
    for meta in manifest.get("fields", []):
        state.field_meta[meta["name"]] = (
            int(meta["entity_dim"]),
            tuple(int(s) for s in meta.get("shape", [1])),
        )
    for section, records in section_records.items():
        if section == "verts":
            for gid, xyz, cdim, ctag in records:
                state.verts[int(gid)] = (
                    tuple(float(c) for c in xyz),
                    (int(cdim), int(ctag)),
                )
        elif section == "elems":
            for gid, row in records:
                state.elems[int(gid)] = tuple(int(v) for v in row)
        elif section == "tags":
            for name, dim, key, value in records:
                state.tags[
                    (name, int(dim), tuple(int(g) for g in key))
                ] = value
        else:
            name = _field_name_of(manifest, section)
            if name is None:
                raise CorruptSnapshotError(
                    f"manifest names no field for section {section!r}"
                )
            bucket = state.fields.setdefault(name, {})
            for key, value in records:
                bucket[tuple(int(g) for g in key)] = np.asarray(value)
    return state


# ---------------------------------------------------------------------------
# parity helpers (used by tests, the bench, and the CI snapshot-io gate)
# ---------------------------------------------------------------------------


def owned_gid_set(dmesh: DistributedMesh, dim: int) -> frozenset:
    """The global set of owned (non-ghost) entity gids of one dimension.

    Restores at different part counts must agree on this set exactly —
    it is the partition-independent identity of the mesh.
    """
    out = set()
    for part in dmesh:
        for ent in part.mesh.entities(dim):
            if part.owns(ent) and not part.is_ghost(ent):
                out.add(part.gid(ent))
    return frozenset(out)


def field_checksum(dmesh: DistributedMesh, dfield: DistributedField) -> float:
    """Order-independent fsum of a field over owned entities."""
    import math

    values = []
    for part in dmesh:
        local = dfield.on(part.pid)
        for ent in part.mesh.entities(dfield.entity_dim):
            if part.owns(ent) and not part.is_ghost(ent) and local.has(ent):
                values.append(float(np.sum(local.get(ent))))
    return math.fsum(sorted(values))
