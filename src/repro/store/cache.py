"""`SnapshotCache`: content-addressed warm-start snapshots for svc jobs.

Every `repro.svc` mesh job historically regenerated its geometry from
scratch — rank 0 meshes the rectangle, partitions it, scatters the parts
— before doing any real work.  For a multi-tenant service running many
jobs over the *same* base geometry that is pure waste.  The cache keys a
one-epoch :class:`~repro.store.snapshot.SnapshotStore` by the SHA-256 of
the canonical ``(workload, geometry params)`` JSON; the first job to need
a given base mesh builds and publishes it, and every later job — at *any*
gang size, thanks to repartition-on-load — restores it with one parallel
load instead of regenerating.

Cache hits and misses are charged to ``store.cache.hits`` /
``store.cache.misses`` on the cache's counter registry, so a service that
constructs the cache with its own counters surfaces warm-start rates in
its reports.  :func:`install_cache` / :func:`current_cache` give
workloads (which are resolved by name and run deep inside the service
runtime) a process-wide discovery point, mirroring the tracer's
``install``/``current`` convention.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from ..obs.tracer import Tracer
from ..parallel.perf import GLOBAL, PerfCounters
from ..partition.dmesh import DistributedMesh
from ..partition.fieldsync import DistributedField
from .format import DEFAULT_CHUNK_RECORDS, CorruptSnapshotError
from .snapshot import EpochInfo, SnapshotStore, StoreStats

__all__ = [
    "SnapshotCache",
    "current_cache",
    "install_cache",
    "uninstall_cache",
]


def cache_key(workload: str, params: Dict[str, Any]) -> str:
    """Content address of a base mesh: SHA-256 of the canonical JSON.

    ``params`` must be JSON-serializable; key order never matters
    (``sort_keys``), so logically-equal parameter dicts share an entry.
    """
    blob = json.dumps(
        {"params": params, "workload": workload},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SnapshotCache:
    """A directory of content-addressed snapshot stores (see module doc)."""

    def __init__(
        self,
        root: Union[str, Path],
        counters: Optional[PerfCounters] = None,
        tracer: Optional[Tracer] = None,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.counters = counters if counters is not None else GLOBAL
        self.tracer = tracer
        self.chunk_records = chunk_records
        # Concurrent jobs in one scheduling wave may warm-start the same
        # key; the lock makes "first builds, the rest hit" atomic.
        self._lock = threading.Lock()

    def _store(self, key: str) -> SnapshotStore:
        return SnapshotStore(
            self.root / key,
            chunk_records=self.chunk_records,
            counters=self.counters,
            tracer=self.tracer,
        )

    def has(self, workload: str, params: Dict[str, Any]) -> bool:
        store_root = self.root / cache_key(workload, params)
        return store_root.is_dir() and self._store(
            cache_key(workload, params)
        ).tip() is not None

    def put(
        self,
        workload: str,
        params: Dict[str, Any],
        dmesh: DistributedMesh,
        fields: Sequence[DistributedField] = (),
    ) -> EpochInfo:
        """Publish a base mesh under its content address (one full epoch)."""
        store = self._store(cache_key(workload, params))
        tip = store.tip()
        if tip is not None:
            return tip  # content-addressed: an existing entry is the answer
        return store.save(
            dmesh, fields, full=True,
            extra={"workload": workload, "params": params},
        )

    def fetch(
        self,
        workload: str,
        params: Dict[str, Any],
        nparts: Optional[int] = None,
        **load_kwargs: Any,
    ) -> Optional[
        Tuple[DistributedMesh, Dict[str, DistributedField], StoreStats]
    ]:
        """Restore the cached base mesh at ``nparts``, or ``None`` on a miss.

        Charges ``store.cache.hits`` / ``store.cache.misses``; a corrupt
        entry counts as a miss (the caller rebuilds and re-publishes).
        """
        store = self._store(cache_key(workload, params))
        if store.tip() is None:
            self.counters.add("store.cache.misses")
            return None
        try:
            result = store.load_at(nparts=nparts, **load_kwargs)
        except CorruptSnapshotError:
            self.counters.add("store.cache.misses")
            return None
        self.counters.add("store.cache.hits")
        return result

    def warm_start(
        self,
        workload: str,
        params: Dict[str, Any],
        nparts: int,
        build: Callable[
            [], Tuple[DistributedMesh, Sequence[DistributedField]]
        ],
        **load_kwargs: Any,
    ) -> Tuple[DistributedMesh, Dict[str, DistributedField], bool]:
        """The whole protocol: hit -> load, miss -> build + publish.

        Returns ``(dmesh, fields_by_name, warm)``.  On a miss, ``build()``
        runs (it must produce the mesh at ``nparts``) and its result is
        published for the next caller; on a hit the builder is skipped
        entirely — that skip is the warm-start speedup the benchmark
        measures.  Serialized per cache, so one scheduling wave of
        identical jobs builds the geometry exactly once.
        """
        with self._lock:
            cached = self.fetch(workload, params, nparts=nparts, **load_kwargs)
            if cached is not None:
                dmesh, fields, _stats = cached
                return dmesh, fields, True
            dmesh, built_fields = build()
            self.put(workload, params, dmesh, built_fields)
            fields = {f.name: f for f in built_fields}
            return dmesh, fields, False

    def entries(self) -> Dict[str, Dict[str, Any]]:
        """Per-key summary: workload/params metadata plus epoch totals."""
        out: Dict[str, Dict[str, Any]] = {}
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir():
                continue
            store = self._store(entry.name)
            tip = store.tip()
            if tip is None:
                continue
            info = tip.to_dict()
            out[entry.name] = info
        return out


_INSTALL_LOCK = threading.Lock()
_CURRENT: Optional[SnapshotCache] = None


def install_cache(cache: SnapshotCache) -> SnapshotCache:
    """Make ``cache`` discoverable via :func:`current_cache`; returns it."""
    global _CURRENT
    with _INSTALL_LOCK:
        _CURRENT = cache
    return cache


def uninstall_cache() -> None:
    global _CURRENT
    with _INSTALL_LOCK:
        _CURRENT = None


def current_cache() -> Optional[SnapshotCache]:
    """The installed cache, or ``None`` when warm-starting is off."""
    with _INSTALL_LOCK:
        return _CURRENT
