"""`SnapshotStore`: chains of full/delta epochs with parallel load.

The store owns a directory of ``repro.store/1`` epoch directories
(:mod:`repro.store.format`).  Saving extracts the canonical state of a
:class:`~repro.partition.dmesh.DistributedMesh` and writes either a full
epoch or — when a valid parent chain exists — a *differential* epoch
holding only the records that changed since the parent (plus removal
lists).  Chains are bounded (``full_every``) and compactable: rewriting
any epoch as a full snapshot of its materialized chain is deterministic
and in-place, so rotation can drop ancestors without losing restorable
epochs.

Loading is the Hapla et al. (arXiv 2004.08729) parallel read: the target
parts each take a *disjoint contiguous range of chunks* across the whole
chain, decode them locally, and one
:class:`~repro.parallel.sf.StarForest` bcast redistributes every record to
the part that owns it under the target partition — elements dealt in
contiguous sorted-gid blocks, vertices/tags/fields to the parts whose
elements reference them.  Restoring a snapshot written at 4 parts onto
1, 2 or 8 parts yields identical owned-gid sets and field checksums; the
wire traffic is charged to ``sf.*``/``net.*`` counters and the comm
matrix like every other distributed service, plus ``store.*`` counters
for the I/O itself.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..gmodel.model import Model, ModelEntity
from ..mesh.build import from_connectivity
from ..mesh.entity import Ent
from ..obs.stats import CommProbe
from ..obs.tracer import Tracer, current as current_tracer, trace_span
from ..parallel.perf import GLOBAL, PerfCounters
from ..parallel.sf import StarForest
from ..parallel.topology import MachineTopology
from ..partition.dmesh import DistributedMesh
from ..partition.fieldsync import DistributedField
from ..partition.io import _key_index, _restore_intermediate_gids
from ..partition.migration import rebuild_links
from .format import (
    DEFAULT_CHUNK_RECORDS,
    FORMAT,
    MANIFEST,
    CorruptSnapshotError,
    SnapshotState,
    apply_delta,
    diff_states,
    epoch_sections,
    load_chunk,
    read_epoch_manifest,
    state_from_dmesh,
    state_from_records,
    write_epoch,
)

__all__ = ["EpochInfo", "SnapshotStore", "StoreStats"]


@dataclass(frozen=True)
class EpochInfo:
    """One on-disk epoch: identity, chain position, and I/O totals."""

    index: int
    kind: str
    parent: Optional[int]
    path: Path
    records: int
    chunks: int
    payload_bytes: int
    step: int = -1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "parent": self.parent,
            "records": self.records,
            "chunks": self.chunks,
            "payload_bytes": self.payload_bytes,
            "step": self.step,
        }


@dataclass(frozen=True)
class StoreStats:
    """I/O + communication cost of one store operation (JSON-safe).

    Deliberately wall-time-free, like every report document in this repo:
    identical loads produce byte-identical stats.  Wall times live on the
    ``store.save``/``store.load``/``store.compact`` tracer spans.
    """

    op: str
    epoch: int
    kind: str
    nparts: int
    chain_length: int
    chunks: int
    chunk_bytes: int
    records: int
    messages: int
    wire_bytes: int
    encoded_bytes: int
    supersteps: int
    sf_ops: int
    extra: Dict[str, Any] = dataclass_field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "op": self.op,
            "epoch": self.epoch,
            "kind": self.kind,
            "nparts": self.nparts,
            "chain_length": self.chain_length,
            "chunks": self.chunks,
            "chunk_bytes": self.chunk_bytes,
            "records": self.records,
            "messages": self.messages,
            "wire_bytes": self.wire_bytes,
            "encoded_bytes": self.encoded_bytes,
            "supersteps": self.supersteps,
            "sf_ops": self.sf_ops,
        }
        return out


class SnapshotStore:
    """A directory of chained ``repro.store/1`` epochs (see module doc).

    Parameters
    ----------
    root:
        Directory holding the epochs (created if needed).  Each epoch is a
        subdirectory ``<prefix><index>``.
    prefix:
        Epoch directory name prefix.  The checkpoint manager passes its
        own ``ckpt-`` prefix so store epochs and legacy ``repro.dmesh/2``
        checkpoints share one rotation namespace.
    chunk_records:
        Records per chunk file; the parallelism floor of a load is
        ``total chunks``, so smaller chunks spread reads wider.
    full_every:
        Maximum delta-chain length; once a chain reaches this many epochs
        the next save writes a full snapshot.
    counters / tracer:
        Where ``store.*`` counters and ``store.save``/``store.load``/
        ``store.compact`` spans land (defaults: the global registry and
        the installed tracer).
    """

    def __init__(
        self,
        root: Union[str, Path],
        prefix: str = "epoch-",
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        full_every: int = 8,
        counters: Optional[PerfCounters] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if chunk_records < 1:
            raise ValueError(
                f"chunk_records must be >= 1, got {chunk_records}"
            )
        if full_every < 1:
            raise ValueError(f"full_every must be >= 1, got {full_every}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.chunk_records = chunk_records
        self.full_every = full_every
        self.counters = counters if counters is not None else GLOBAL
        self.tracer = tracer if tracer is not None else current_tracer()

    # -- enumeration ---------------------------------------------------------

    def _indexed_dirs(self) -> List[Tuple[int, Path]]:
        """Every ``<prefix><index>`` directory, any format, sorted."""
        out: List[Tuple[int, Path]] = []
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir() or not entry.name.startswith(self.prefix):
                continue
            if entry.name.endswith(".tmp"):
                continue
            try:
                out.append((int(entry.name[len(self.prefix):]), entry))
            except ValueError:
                continue
        return out

    def _epoch_path(self, index: int) -> Path:
        return self.root / f"{self.prefix}{index:06d}"

    def next_index(self) -> int:
        """One past the highest index of *any* sibling directory.

        Legacy checkpoints sharing the prefix count too, so a manager that
        switches backends keeps a single monotone index sequence.
        """
        dirs = self._indexed_dirs()
        return dirs[-1][0] + 1 if dirs else 0

    @staticmethod
    def _info(manifest: Dict[str, Any], path: Path) -> EpochInfo:
        return EpochInfo(
            index=int(manifest["index"]),
            kind=manifest["kind"],
            parent=manifest.get("parent"),
            path=path,
            records=int(manifest.get("records", 0)),
            chunks=sum(
                len(chunks) for chunks in manifest["sections"].values()
            ),
            payload_bytes=int(manifest.get("payload_bytes", 0)),
            step=int(manifest.get("extra", {}).get("step", -1)),
        )

    def epochs(self) -> List[EpochInfo]:
        """All store-format epochs with readable manifests, oldest first.

        Directories in other formats (e.g. legacy ``repro.dmesh/2``
        checkpoints under a shared prefix) and unreadable manifests are
        skipped; :meth:`inspect` reports them.
        """
        infos: List[EpochInfo] = []
        for index, path in self._indexed_dirs():
            try:
                manifest = read_epoch_manifest(path)
            except CorruptSnapshotError:
                continue
            if int(manifest["index"]) != index:
                continue  # directory renamed by hand; not addressable
            infos.append(self._info(manifest, path))
        return infos

    def tip(self) -> Optional[EpochInfo]:
        infos = self.epochs()
        return infos[-1] if infos else None

    # -- chain resolution ----------------------------------------------------

    def _chain(self, index: int) -> List[Tuple[EpochInfo, Dict[str, Any]]]:
        """Manifests from the base full epoch to ``index``, inclusive.

        Raises :class:`CorruptSnapshotError` on a missing epoch, a broken
        parent link, or a cycle.
        """
        chain: List[Tuple[EpochInfo, Dict[str, Any]]] = []
        cursor: Optional[int] = int(index)
        while cursor is not None:
            path = self._epoch_path(cursor)
            manifest = read_epoch_manifest(path)
            chain.append((self._info(manifest, path), manifest))
            if manifest["kind"] == "full":
                cursor = None
            else:
                parent = int(manifest["parent"])
                if parent >= int(manifest["index"]):
                    raise CorruptSnapshotError(
                        f"{path}: delta chain does not descend "
                        f"({manifest['index']} -> {parent})"
                    )
                cursor = parent
        chain.reverse()
        return chain

    def materialize(self, index: Optional[int] = None) -> SnapshotState:
        """The full state at epoch ``index`` (default: the tip), read serially."""
        info = self.tip() if index is None else None
        if index is None:
            if info is None:
                raise CorruptSnapshotError(f"{self.root}: store is empty")
            index = info.index
        chain = self._chain(int(index))
        state: Optional[SnapshotState] = None
        for einfo, manifest in chain:
            records: Dict[str, List[Any]] = {}
            for section, _ci, entry in epoch_sections(manifest):
                chunk, nbytes = load_chunk(einfo.path, entry)
                records.setdefault(section, []).extend(chunk)
                self.counters.add("store.chunks.read")
                self.counters.add("store.bytes.read", nbytes)
            epoch_state = state_from_records(manifest, records)
            if state is None or manifest["kind"] == "full":
                state = epoch_state
            else:
                apply_delta(state, epoch_state, manifest.get("removed", {}))
        assert state is not None
        return state

    # -- writing -------------------------------------------------------------

    def save(
        self,
        dmesh: DistributedMesh,
        fields: Sequence[DistributedField] = (),
        extra: Optional[Dict[str, Any]] = None,
        full: bool = False,
        index: Optional[int] = None,
    ) -> EpochInfo:
        """Write one epoch; differential against the tip when possible.

        A delta is written when the store has a tip with an intact chain
        shorter than ``full_every``; otherwise (or with ``full=True``) a
        full epoch.  The epoch directory appears atomically.
        """
        with trace_span(self.tracer, "store.save", store=str(self.root)):
            state = state_from_dmesh(dmesh, fields)
            parent: Optional[EpochInfo] = None
            parent_state: Optional[SnapshotState] = None
            if not full:
                tip = self.tip()
                if tip is not None:
                    try:
                        if len(self._chain(tip.index)) < self.full_every:
                            parent_state = self.materialize(tip.index)
                            parent = tip
                    except CorruptSnapshotError:
                        parent = None
                        parent_state = None
            idx = self.next_index() if index is None else int(index)
            path = self._epoch_path(idx)
            if parent_state is None:
                manifest = write_epoch(
                    path,
                    state,
                    kind="full",
                    index=idx,
                    chunk_records=self.chunk_records,
                    nparts=dmesh.nparts,
                    extra=extra,
                )
                self.counters.add("store.epochs.full")
            else:
                upserts, removed = diff_states(parent_state, state)
                manifest = write_epoch(
                    path,
                    upserts,
                    kind="delta",
                    index=idx,
                    parent=parent.index,
                    removed=removed,
                    chunk_records=self.chunk_records,
                    nparts=dmesh.nparts,
                    extra=extra,
                )
                self.counters.add("store.epochs.delta")
            info = self._info(manifest, path)
            self.counters.add("store.chunks.written", info.chunks)
            self.counters.add("store.bytes.written", info.payload_bytes)
            self.counters.add("store.records.written", info.records)
            return info

    def compact(self, index: Optional[int] = None) -> EpochInfo:
        """Rewrite epoch ``index`` (default: tip) as a full snapshot, in place.

        Deterministic: compacting is exactly "materialize the chain, write
        it as a full epoch under the same index and extra metadata", so
        two stores holding the same chain compact to byte-identical
        epochs.  Afterwards the epoch's ancestors are prunable.
        """
        with trace_span(self.tracer, "store.compact", store=str(self.root)):
            tip = self.tip()
            if index is None:
                if tip is None:
                    raise CorruptSnapshotError(f"{self.root}: store is empty")
                index = tip.index
            path = self._epoch_path(int(index))
            manifest = read_epoch_manifest(path)
            if manifest["kind"] == "full":
                return self._info(manifest, path)
            state = self.materialize(int(index))
            new_manifest = write_epoch(
                path,
                state,
                kind="full",
                index=int(index),
                chunk_records=self.chunk_records,
                nparts=int(manifest.get("nparts", 1)),
                extra=manifest.get("extra"),
            )
            self.counters.add("store.compactions")
            return self._info(new_manifest, path)

    def prune(self, keep: int) -> List[int]:
        """Delete all but the newest ``keep`` epochs; returns pruned indices.

        The oldest surviving epoch is compacted first when it is a delta,
        so no survivor's chain dangles.  ``keep <= 0`` prunes nothing (the
        unlimited sentinel, matching the checkpoint manager).
        """
        if keep <= 0:
            return []
        infos = self.epochs()
        cut = infos[: max(0, len(infos) - keep)]
        if not cut:
            return []
        survivors = infos[len(cut):]
        if survivors and survivors[0].kind == "delta":
            self.compact(survivors[0].index)
        for info in cut:
            shutil.rmtree(info.path, ignore_errors=True)
        return [info.index for info in cut]

    def inspect(self) -> Dict[str, Any]:
        """JSON-safe summary: epochs, chunk/byte totals, delta ratios."""
        epochs = [info.to_dict() for info in self.epochs()]
        full_bytes = [e["payload_bytes"] for e in epochs if e["kind"] == "full"]
        base = full_bytes[-1] if full_bytes else 0
        for e in epochs:
            e["delta_ratio"] = (
                round(e["payload_bytes"] / base, 6)
                if base and e["kind"] == "delta"
                else None
            )
        unreadable = []
        known = {e["index"] for e in epochs}
        for index, path in self._indexed_dirs():
            if index in known:
                continue
            try:
                read_epoch_manifest(path)
            except CorruptSnapshotError as exc:
                unreadable.append({"path": path.name, "error": str(exc)})
        return {
            "format": FORMAT,
            "root": str(self.root),
            "epochs": epochs,
            "total_payload_bytes": sum(e["payload_bytes"] for e in epochs),
            "total_chunks": sum(e["chunks"] for e in epochs),
            "other_dirs": unreadable,
        }

    # -- parallel load -------------------------------------------------------

    def load_at(
        self,
        nparts: Optional[int] = None,
        epoch: Optional[int] = None,
        model: Optional[Model] = None,
        topology: Optional[MachineTopology] = None,
        counters: Optional[PerfCounters] = None,
        tracer: Optional[Tracer] = None,
        codec: str = "binary",
        sanitize: Optional[bool] = None,
    ) -> Tuple[DistributedMesh, Dict[str, DistributedField], StoreStats]:
        """Parallel restore at any part count; ``(dmesh, fields, stats)``.

        Each target part reads a disjoint contiguous range of the chain's
        chunks and decodes them locally; a single star-forest bcast then
        moves every live record to the parts that need it under the target
        partition (elements in contiguous sorted-gid blocks, vertices and
        tag/field records to every part whose elements reference them).
        The result carries rebuilt remote-copy links and re-derived
        intermediate-entity gids — structurally verified equal to a fresh
        distribution of the same mesh.
        """
        tip = self.tip()
        target_index = tip.index if (epoch is None and tip) else epoch
        if target_index is None:
            raise CorruptSnapshotError(f"{self.root}: store is empty")
        chain = self._chain(int(target_index))
        top_manifest = chain[-1][1]
        nparts = (
            int(top_manifest.get("nparts", 1)) if nparts is None
            else int(nparts)
        )
        if nparts < 1:
            raise ValueError(f"need at least one part, got {nparts}")
        use_counters = counters if counters is not None else self.counters
        use_tracer = tracer if tracer is not None else self.tracer
        dmesh = DistributedMesh(
            nparts,
            model=model,
            topology=topology,
            counters=use_counters,
            sanitize=sanitize,
            tracer=use_tracer,
            codec=codec,
        )
        probe = CommProbe(use_counters)
        before = {
            name: use_counters.get(name)
            for name in (
                "store.chunks.read", "store.bytes.read", "sf.records"
            )
        }
        with trace_span(
            dmesh.tracer, "store.load", store=str(self.root),
            epoch=int(target_index), nparts=nparts,
        ):
            fields = self._load_into(dmesh, chain)

        def delta(name: str) -> int:
            return use_counters.get(name) - before[name]

        stats = StoreStats(
            op="load",
            epoch=int(target_index),
            kind=top_manifest["kind"],
            nparts=nparts,
            chain_length=len(chain),
            chunks=delta("store.chunks.read"),
            chunk_bytes=delta("store.bytes.read"),
            records=delta("sf.records"),
            messages=probe.messages(),
            wire_bytes=probe.wire_bytes(),
            encoded_bytes=probe.encoded_bytes(),
            supersteps=probe.supersteps(),
            sf_ops=1,
            extra=dict(top_manifest.get("extra", {})),
        )
        return dmesh, fields, stats

    def _load_into(
        self,
        dmesh: DistributedMesh,
        chain: List[Tuple[EpochInfo, Dict[str, Any]]],
    ) -> Dict[str, DistributedField]:
        """Chunk-parallel read + one redistribution bcast + part build."""
        nparts = dmesh.nparts
        counters = dmesh.counters
        top_manifest = chain[-1][1]
        etype = int(top_manifest["etype"])

        # Phase 1 — deal the chain's chunks to the readers (= target
        # parts) in disjoint contiguous ranges, and decode each range
        # where it landed.  In this simulated runtime all readers share
        # the process, but the assignment is the on-disk parallelism:
        # reader r touches only its own chunk files.
        chunk_list: List[Tuple[int, str, int, Dict[str, Any], Path]] = []
        for seq, (einfo, manifest) in enumerate(chain):
            for section, ci, entry in epoch_sections(manifest):
                chunk_list.append((seq, section, ci, entry, einfo.path))
        total_chunks = len(chunk_list)
        reader_of: Dict[Tuple[int, str, int], int] = {}
        chunk_records: Dict[Tuple[int, str, int], List[Any]] = {}
        for j, (seq, section, ci, entry, path) in enumerate(chunk_list):
            reader = j * nparts // total_chunks if total_chunks else 0
            records, nbytes = load_chunk(path, entry)
            reader_of[(seq, section, ci)] = reader
            chunk_records[(seq, section, ci)] = records
            counters.add("store.chunks.read")
            counters.add("store.bytes.read", nbytes)

        # Phase 2 — fold the chain front-to-back into "live" record
        # locations: identity -> (reader pid, chunk handle).  Removal
        # lists drop earlier entries; later upserts shadow earlier ones.
        # This is pure control-plane metadata (ids, not payloads).
        live: Dict[str, Dict[Any, Tuple[int, Tuple[int, str, int, int]]]] = {
            "v": {}, "e": {}, "t": {}, "f": {},
        }
        field_names: Dict[Tuple[int, str], str] = {}
        for seq, (einfo, manifest) in enumerate(chain):
            for meta in manifest.get("fields", []):
                field_names[(seq, meta["section"])] = meta["name"]
            removed = manifest.get("removed", {})
            for gid in removed.get("verts", ()):
                live["v"].pop(int(gid), None)
            for gid in removed.get("elems", ()):
                live["e"].pop(int(gid), None)
            for name, dim, key in removed.get("tags", ()):
                live["t"].pop(
                    (name, int(dim), tuple(int(g) for g in key)), None
                )
            for name, keys in removed.get("fields", {}).items():
                for key in keys:
                    live["f"].pop(
                        (name, tuple(int(g) for g in key)), None
                    )
            # A delta's field meta is authoritative: dropped fields lose
            # every record, whatever epoch it came from.
            if manifest["kind"] == "delta":
                alive = {
                    meta["name"] for meta in manifest.get("fields", [])
                }
                for fkey in [k for k in live["f"] if k[0] not in alive]:
                    del live["f"][fkey]
            for section, ci, entry in epoch_sections(manifest):
                rpid = reader_of[(seq, section, ci)]
                records = chunk_records[(seq, section, ci)]
                for row, rec in enumerate(records):
                    loc = (rpid, (seq, section, ci, row))
                    if section == "verts":
                        live["v"][int(rec[0])] = loc
                    elif section == "elems":
                        live["e"][int(rec[0])] = loc
                    elif section == "tags":
                        live["t"][
                            (rec[0], int(rec[1]),
                             tuple(int(g) for g in rec[2]))
                        ] = loc
                    else:
                        name = field_names[(seq, section)]
                        live["f"][
                            (name, tuple(int(g) for g in rec[0]))
                        ] = loc

        # Phase 3 — target assignment.  Elements: contiguous sorted-gid
        # blocks (element j of M -> part j*P//M, the same deal the serial
        # regroup path uses).  Vertices follow the elements referencing
        # them; tag/field records go to every part holding all their key
        # vertices (supersets cost a few duplicate deliveries, dropped at
        # apply time by the key index).
        ordered = sorted(live["e"])
        total = len(ordered)
        elem_target = {
            egid: j * nparts // total for j, egid in enumerate(ordered)
        }
        part_vgids: List[set] = [set() for _ in range(nparts)]
        vert_targets: Dict[int, set] = {}
        for egid, (rpid, handle) in live["e"].items():
            seq, section, ci, row = handle
            pid = elem_target[egid]
            for vgid in chunk_records[(seq, section, ci)][row][1]:
                vgid = int(vgid)
                part_vgids[pid].add(vgid)
                vert_targets.setdefault(vgid, set()).add(pid)

        forest = StarForest(dmesh, name="store.load")
        for egid, (rpid, handle) in live["e"].items():
            forest.add_leaf(
                elem_target[egid], ("e", egid), rpid, handle
            )
        for vgid, (rpid, handle) in live["v"].items():
            for pid in vert_targets.get(vgid, ()):
                forest.add_leaf(pid, ("v", vgid), rpid, handle)
        for (name, dim, key), (rpid, handle) in live["t"].items():
            for pid in range(nparts):
                if all(g in part_vgids[pid] for g in key):
                    forest.add_leaf(
                        pid, ("t", name, dim, key), rpid, handle
                    )
        for (name, key), (rpid, handle) in live["f"].items():
            for pid in range(nparts):
                if all(g in part_vgids[pid] for g in key):
                    forest.add_leaf(
                        pid, ("f", name, key), rpid, handle
                    )

        # Phase 4 — one bcast redistributes every record.  root_data
        # reads the record out of the owning reader's decoded chunk.
        staged: List[Dict[str, Any]] = [
            {"e": {}, "v": {}, "t": [], "f": {}} for _ in range(nparts)
        ]

        def root_data(rpid: int, handle: Any) -> Any:
            seq, section, ci, row = handle
            return chunk_records[(seq, section, ci)][row]

        def leaf_set(lpid: int, lh: Any, rec: Any) -> None:
            st = staged[lpid]
            if lh[0] == "e":
                st["e"][lh[1]] = tuple(int(v) for v in rec[1])
            elif lh[0] == "v":
                st["v"][lh[1]] = (
                    tuple(float(c) for c in rec[1]),
                    (int(rec[2]), int(rec[3])),
                )
            elif lh[0] == "t":
                st["t"].append((lh[1], lh[2], lh[3], rec[3]))
            else:
                st["f"].setdefault(lh[1], {})[lh[2]] = np.asarray(rec[1])

        forest.bcast(root_data, leaf_set)
        counters.add("store.records.loaded", forest.nleaves)

        # Phase 5 — build each part's serial mesh from its staged block,
        # then re-derive intermediate gids and rebuild remote-copy links
        # (the migration rendezvous), exactly like the regroup restore.
        dim = int(top_manifest["element_dim"])
        dmesh._gid_next = [int(g) for g in top_manifest["gid_next"]]
        model = dmesh.model
        for pid in range(nparts):
            st = staged[pid]
            block = sorted(st["e"])
            if not block:
                continue
            if etype < 0:
                raise CorruptSnapshotError(
                    f"{self.root}: elements present but no element type "
                    "recorded"
                )
            local_of: Dict[int, int] = {}
            conn_rows: List[List[int]] = []
            for egid in block:
                row = []
                for vgid in st["e"][egid]:
                    local = local_of.get(vgid)
                    if local is None:
                        local = local_of[vgid] = len(local_of)
                    row.append(local)
                conn_rows.append(row)
            vgid_list = list(local_of)
            coords = np.asarray([st["v"][g][0] for g in vgid_list])
            mesh = from_connectivity(
                coords, np.asarray(conn_rows, dtype=np.int64), etype
            )
            mesh.model = model
            part = dmesh.part(pid)
            part.mesh = mesh
            for local, vgid in enumerate(vgid_list):
                part.set_gid(Ent(0, local), vgid)
            for local, egid in enumerate(block):
                part.set_gid(Ent(dim, local), egid)
            if model is not None:
                for local, vgid in enumerate(vgid_list):
                    gdim, gtag = st["v"][vgid][1]
                    if gdim >= 0:
                        mesh.set_classification(
                            Ent(0, local), ModelEntity(gdim, gtag)
                        )
                for element in mesh.entities(mesh.dim()):
                    mesh.classify_closure_missing(element)
        _restore_intermediate_gids(dmesh)
        rebuild_links(dmesh)

        # Tags and fields re-attach by entity identity.
        tag_dims = sorted(
            {dim_ for st in staged for _n, dim_, _k, _v in st["t"]}
        )
        field_metas = top_manifest.get("fields", [])
        field_dims = sorted(
            {int(meta["entity_dim"]) for meta in field_metas}
        )
        fields: Dict[str, DistributedField] = {}
        for meta in field_metas:
            fields[meta["name"]] = DistributedField(
                dmesh,
                meta["name"],
                int(meta["entity_dim"]),
                tuple(int(s) for s in meta.get("shape", [1])),
            )
        for pid in range(nparts):
            part = dmesh.part(pid)
            st = staged[pid]
            index = _key_index(
                part, sorted(set(tag_dims) | set(field_dims))
            )
            for name, dim_, key, value in sorted(
                st["t"], key=lambda item: (item[0], item[1], item[2])
            ):
                ent = index.get((dim_, key))
                if ent is not None:
                    part.mesh.tags.create(name)[ent] = value
            for meta in field_metas:
                bucket = st["f"].get(meta["name"], {})
                local = fields[meta["name"]].on(pid)
                entity_dim = int(meta["entity_dim"])
                for key, value in sorted(
                    bucket.items(), key=lambda kv: kv[0]
                ):
                    ent = index.get((entity_dim, key))
                    if ent is not None:
                        local.set(ent, value)
        return fields
