"""Point-to-model-entity classification.

Each mesh entity "maintains its association to the highest level geometric
model entity that it partly represents, referred to as geometric
classification" (paper, Section II).  Classification of a point picks the
*lowest-dimension* model entity whose shape contains the point: a corner
point classifies on the model vertex, not on the three faces meeting there.
Mesh construction uses :func:`classify_point` for vertices and
:func:`classify_from_closure` for higher entities (an entity classifies on
the highest-dimension classification among its bounding vertices' model
entities — the standard rule for meshes of b-rep domains with convex/flat
boundary entities, which all our generated domains satisfy).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .model import Model, ModelEntity


def classify_point(
    model: Model, x: Sequence[float], tol: float = 1e-9
) -> Optional[ModelEntity]:
    """Lowest-dimension model entity containing point ``x``.

    Returns ``None`` when no shape contains ``x`` (point outside the domain).
    Ties within one dimension resolve to the lowest tag, which is fine
    because distinct same-dimension entities overlap only on their shared
    boundary, already claimed by a lower dimension.
    """
    for dim in range(4):
        for ent in model.entities(dim):
            shape = model.shape(ent)
            if shape is not None and shape.contains(x, tol):
                return ent
    return None


def classify_from_closure(
    model: Model, vertex_classifications: Iterable[ModelEntity]
) -> ModelEntity:
    """Classification of a mesh entity from its vertices' classifications.

    The correct classification is the unique model entity of *highest*
    dimension among (and adjacent to all of) the vertex classifications:
    an edge between a face-classified vertex and an edge-classified vertex
    lies on the face; an edge between two vertices of different model edges
    of one face also lies on the face.

    The rule implemented: take the highest-dimension classification ``g``;
    if every other classification is in the closure of ``g``, the entity is
    on ``g``; otherwise it is interior to the lowest-dimension model entity
    whose closure covers all of them (found by walking upward).
    """
    gents = list(vertex_classifications)
    if not gents:
        raise ValueError("need at least one vertex classification")
    best = max(gents, key=lambda g: (g.dim, -g.tag))
    closure = set(model.closure(best))
    if all(g in closure for g in gents):
        return best
    # Walk up from `best` looking for a covering entity, lowest dim first.
    for dim in range(best.dim + 1, 4):
        for cand in model.adjacent(best, dim):
            closure = set(model.closure(cand))
            if all(g in closure for g in gents):
                return cand
    raise ValueError(
        f"no model entity covers classifications {gents}; "
        "is the mesh consistent with the model?"
    )
