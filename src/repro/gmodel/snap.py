"""Snapping points onto geometric model entities.

Mesh modification creates new vertices (edge splits) whose coordinates are
initially interpolated between existing vertices.  When the split edge is
classified on a curved or bounded model entity, the new vertex must be moved
("snapped") onto that entity's true shape so the mesh continues to
approximate the geometry — the paper cites Li et al., "Accounting for curved
domains in mesh adaptation".  For this reproduction's analytic shapes the
snap is a closest-point projection.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .model import Model, ModelEntity


def snap_to_entity(
    model: Model, ent: ModelEntity, x: Sequence[float]
) -> np.ndarray:
    """Closest point of ``ent``'s shape to ``x``.

    Entities without an attached shape (e.g. an interior region of a model
    used purely topologically) return ``x`` unchanged.
    """
    shape = model.shape(ent)
    point = np.asarray(x, dtype=float)
    if shape is None:
        return point.copy()
    return np.asarray(shape.project(point), dtype=float)


def snap_error(model: Model, ent: ModelEntity, x: Sequence[float]) -> float:
    """Distance from ``x`` to ``ent``'s shape (0 when already on it)."""
    projected = snap_to_entity(model, ent, x)
    return float(np.linalg.norm(projected - np.asarray(x, dtype=float)))
