"""Analytic shape evaluators and model builders for simple domains.

Real PUMI queries a CAD kernel (Parasolid/ACIS) or a discrete model for the
shape of each model entity.  This reproduction supplies analytic evaluators —
points, line segments, axis-aligned planar patches, and boxes — sufficient to
classify generated meshes and to snap adapted vertices back onto the domain
boundary.  Each evaluator implements the small protocol the rest of the code
relies on:

``contains(x, tol)``
    whether point ``x`` lies on the shape (within ``tol``),
``project(x)``
    the closest point of the shape to ``x``.

Builders :func:`rect_model` and :func:`box_model` produce complete b-rep
:class:`~repro.gmodel.model.Model` objects with shapes attached, used by the
mesh generators as default classification targets.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .model import Model, ModelEntity


def _fit(x: Sequence[float], ndim: int) -> np.ndarray:
    """Coerce a point to ``ndim`` coordinates (truncate or zero-pad).

    2D models are queried with the mesh's 3-vectors (z always 0); 3D models
    may be queried with 2-vectors in tests.  Either direction is harmless
    for the axis-aligned shapes used here.
    """
    x = np.asarray(x, dtype=float)
    if x.shape[0] == ndim:
        return x
    if x.shape[0] > ndim:
        return x[:ndim]
    padded = np.zeros(ndim)
    padded[: x.shape[0]] = x
    return padded


class PointShape:
    """A 0-dimensional shape: one location in space."""

    def __init__(self, xyz: Sequence[float]) -> None:
        self.xyz = np.asarray(xyz, dtype=float)

    def contains(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        return bool(
            np.linalg.norm(_fit(x, len(self.xyz)) - self.xyz) <= tol
        )

    def project(self, x: Sequence[float]) -> np.ndarray:
        return self.xyz.copy()


class SegmentShape:
    """A straight line segment between two endpoints."""

    def __init__(self, a: Sequence[float], b: Sequence[float]) -> None:
        self.a = np.asarray(a, dtype=float)
        self.b = np.asarray(b, dtype=float)
        self._d = self.b - self.a
        self._len2 = float(self._d @ self._d)
        if self._len2 == 0.0:
            raise ValueError("degenerate segment: endpoints coincide")

    def param(self, x: Sequence[float]) -> float:
        """Clamped parametric coordinate of the closest point (0 at a)."""
        x = _fit(x, len(self.a))
        t = float((x - self.a) @ self._d) / self._len2
        return min(1.0, max(0.0, t))

    def project(self, x: Sequence[float]) -> np.ndarray:
        return self.a + self.param(x) * self._d

    def contains(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        x = _fit(x, len(self.a))
        return bool(np.linalg.norm(x - self.project(x)) <= tol)


class PlanarPatchShape:
    """An axis-aligned rectangular patch: one coordinate fixed, others boxed.

    ``axis`` is the fixed coordinate index, ``value`` its value; ``lo``/``hi``
    bound the remaining coordinates.
    """

    def __init__(
        self,
        axis: int,
        value: float,
        lo: Sequence[float],
        hi: Sequence[float],
    ) -> None:
        self.axis = axis
        self.value = float(value)
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)

    def project(self, x: Sequence[float]) -> np.ndarray:
        x = _fit(x, len(self.lo)).copy()
        x = np.clip(x, self.lo, self.hi)
        x[self.axis] = self.value
        return x

    def contains(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        x = _fit(x, len(self.lo))
        return bool(np.linalg.norm(x - self.project(x)) <= tol)


class BoxShape:
    """A solid axis-aligned box (a model region / 2D face interior)."""

    def __init__(self, lo: Sequence[float], hi: Sequence[float]) -> None:
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if not np.all(self.hi > self.lo):
            raise ValueError("box upper corner must exceed lower corner")

    def project(self, x: Sequence[float]) -> np.ndarray:
        return np.clip(_fit(x, len(self.lo)), self.lo, self.hi)

    def contains(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        x = _fit(x, len(self.lo))
        return bool(
            np.all(x >= self.lo - tol) and np.all(x <= self.hi + tol)
        )


def rect_model(
    lo: Tuple[float, float] = (0.0, 0.0),
    hi: Tuple[float, float] = (1.0, 1.0),
) -> Model:
    """B-rep of a 2D rectangle: 4 vertices, 4 edges, 1 face, with shapes.

    Tagging convention (deterministic, used by the classifiers):

    * vertices 0..3 — corners in (x-,y-), (x+,y-), (x+,y+), (x-,y+) order
    * edges 0..3 — bottom (y-), right (x+), top (y+), left (x-)
    * face 0 — the interior
    """
    model = Model()
    lo = (float(lo[0]), float(lo[1]))
    hi = (float(hi[0]), float(hi[1]))
    corners = [
        (lo[0], lo[1]),
        (hi[0], lo[1]),
        (hi[0], hi[1]),
        (lo[0], hi[1]),
    ]
    verts = []
    for tag, corner in enumerate(corners):
        v = model.add(0, tag)
        model.set_shape(v, PointShape(corner))
        verts.append(v)
    edge_ends = [(0, 1), (1, 2), (2, 3), (3, 0)]
    face = model.add(2, 0)
    model.set_shape(face, BoxShape(lo, hi))
    for tag, (i, j) in enumerate(edge_ends):
        e = model.add(1, tag)
        model.set_shape(e, SegmentShape(corners[i], corners[j]))
        model.add_adjacency(e, verts[i])
        model.add_adjacency(e, verts[j])
        model.add_adjacency(face, e)
    return model


def box_model(
    lo: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    hi: Tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> Model:
    """B-rep of a 3D box: 8 vertices, 12 edges, 6 faces, 1 region.

    Vertex tags follow binary corner encoding: bit k set means coordinate k
    is at ``hi``.  Face tags are ``2*axis + side`` (side 0 = lo, 1 = hi).
    """
    model = Model()
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)

    corners = {}
    for code in range(8):
        xyz = [hi[k] if code >> k & 1 else lo[k] for k in range(3)]
        v = model.add(0, code)
        model.set_shape(v, PointShape(xyz))
        corners[code] = np.asarray(xyz)

    # Edges: pairs of corner codes differing in exactly one bit.
    edge_tag = {}
    tag = 0
    for a in range(8):
        for bit in range(3):
            b = a | (1 << bit)
            if b != a and a < b and (a ^ b).bit_count() == 1:
                e = model.add(1, tag)
                model.set_shape(e, SegmentShape(corners[a], corners[b]))
                model.add_adjacency(e, model.find(0, a))
                model.add_adjacency(e, model.find(0, b))
                edge_tag[(a, b)] = tag
                tag += 1

    region = model.add(3, 0)
    model.set_shape(region, BoxShape(lo, hi))
    for axis in range(3):
        for side in (0, 1):
            f = model.add(2, 2 * axis + side)
            value = hi[axis] if side else lo[axis]
            flo = lo.copy()
            fhi = hi.copy()
            flo[axis] = fhi[axis] = value
            model.set_shape(f, PlanarPatchShape(axis, value, flo, fhi))
            # The face's four edges: corners with this axis's bit fixed.
            for a, b in edge_tag:
                fixed = (a >> axis & 1) == side and (b >> axis & 1) == side
                if fixed:
                    model.add_adjacency(f, model.find(1, edge_tag[(a, b)]))
            model.add_adjacency(region, f)
    return model
