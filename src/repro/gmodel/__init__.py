"""Geometric model component: b-rep topology, analytic shapes, classification.

Reproduces the "Geometric Model" box of PUMI's software structure (Fig. 1):
a non-manifold boundary representation interrogated for model-entity
adjacencies and shape information, the classification target for every mesh
entity.
"""

from .classify import classify_from_closure, classify_point
from .cylinder import (
    DiskShape,
    LateralShape,
    RimShape,
    SolidCylinderShape,
    cylinder_model,
)
from .model import Model, ModelEntity
from .shapes import (
    BoxShape,
    PlanarPatchShape,
    PointShape,
    SegmentShape,
    box_model,
    rect_model,
)
from .snap import snap_error, snap_to_entity

__all__ = [
    "BoxShape",
    "DiskShape",
    "LateralShape",
    "Model",
    "ModelEntity",
    "RimShape",
    "SolidCylinderShape",
    "PlanarPatchShape",
    "PointShape",
    "SegmentShape",
    "box_model",
    "classify_from_closure",
    "classify_point",
    "cylinder_model",
    "rect_model",
    "snap_error",
    "snap_to_entity",
]
