"""Cylinder b-rep: the curved-geometry model for snapping tests.

The box/rectangle models exercise classification on flat entities; real
adaptive workflows (the paper cites Li et al. on curved domains) need new
vertices snapped onto *curved* model faces.  This module provides an
axis-aligned circular cylinder: one region, two planar end disks, one
curved lateral face, two circular rim edges (each closed through a seam
vertex, the standard trick for b-reps without periodic edge support).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .model import Model
from .shapes import PointShape, _fit


class DiskShape:
    """A flat disk: z fixed at ``z0``, radius ``r`` about the z axis."""

    def __init__(self, z0: float, radius: float) -> None:
        if radius <= 0:
            raise ValueError("disk radius must be positive")
        self.z0 = float(z0)
        self.radius = float(radius)

    def project(self, x: Sequence[float]) -> np.ndarray:
        x = _fit(x, 3).copy()
        rho = float(np.hypot(x[0], x[1]))
        if rho > self.radius:
            scale = self.radius / rho
            x[0] *= scale
            x[1] *= scale
        x[2] = self.z0
        return x

    def contains(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        x = _fit(x, 3)
        return bool(np.linalg.norm(x - self.project(x)) <= tol)


class LateralShape:
    """The curved cylinder wall: distance ``r`` from the z axis."""

    def __init__(self, radius: float, z_lo: float, z_hi: float) -> None:
        if radius <= 0 or z_hi <= z_lo:
            raise ValueError("need positive radius and z_hi > z_lo")
        self.radius = float(radius)
        self.z_lo = float(z_lo)
        self.z_hi = float(z_hi)

    def project(self, x: Sequence[float]) -> np.ndarray:
        x = _fit(x, 3).copy()
        rho = float(np.hypot(x[0], x[1]))
        if rho < 1e-300:
            x[0], x[1] = self.radius, 0.0  # axis point: pick the seam
        else:
            scale = self.radius / rho
            x[0] *= scale
            x[1] *= scale
        x[2] = min(max(x[2], self.z_lo), self.z_hi)
        return x

    def contains(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        x = _fit(x, 3)
        return bool(np.linalg.norm(x - self.project(x)) <= tol)


class RimShape:
    """A circular rim: radius ``r`` circle in the plane ``z = z0``."""

    def __init__(self, z0: float, radius: float) -> None:
        self.z0 = float(z0)
        self.radius = float(radius)

    def project(self, x: Sequence[float]) -> np.ndarray:
        x = _fit(x, 3).copy()
        rho = float(np.hypot(x[0], x[1]))
        if rho < 1e-300:
            x[0], x[1] = self.radius, 0.0
        else:
            scale = self.radius / rho
            x[0] *= scale
            x[1] *= scale
        x[2] = self.z0
        return x

    def contains(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        x = _fit(x, 3)
        return bool(np.linalg.norm(x - self.project(x)) <= tol)


class SolidCylinderShape:
    """The cylinder interior (the model region)."""

    def __init__(self, radius: float, z_lo: float, z_hi: float) -> None:
        self.radius = float(radius)
        self.z_lo = float(z_lo)
        self.z_hi = float(z_hi)

    def project(self, x: Sequence[float]) -> np.ndarray:
        x = _fit(x, 3).copy()
        rho = float(np.hypot(x[0], x[1]))
        if rho > self.radius:
            scale = self.radius / rho
            x[0] *= scale
            x[1] *= scale
        x[2] = min(max(x[2], self.z_lo), self.z_hi)
        return x

    def contains(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        x = _fit(x, 3)
        rho = float(np.hypot(x[0], x[1]))
        return (
            rho <= self.radius + tol
            and self.z_lo - tol <= x[2] <= self.z_hi + tol
        )


def cylinder_model(
    radius: float = 1.0, height: float = 1.0
) -> Model:
    """B-rep of a solid cylinder about the z axis, base at z=0.

    Tags: region 0; faces 0 (bottom disk), 1 (top disk), 2 (lateral);
    edges 0 (bottom rim), 1 (top rim); vertices 0, 1 (the rim seams at
    angle 0 — present so every edge has a boundary, as CAD kernels without
    periodic edges model closed curves).
    """
    model = Model()
    seam_bottom = model.add(0, 0)
    model.set_shape(seam_bottom, PointShape([radius, 0.0, 0.0]))
    seam_top = model.add(0, 1)
    model.set_shape(seam_top, PointShape([radius, 0.0, height]))

    rim_bottom = model.add(1, 0)
    model.set_shape(rim_bottom, RimShape(0.0, radius))
    model.add_adjacency(rim_bottom, seam_bottom)
    rim_top = model.add(1, 1)
    model.set_shape(rim_top, RimShape(height, radius))
    model.add_adjacency(rim_top, seam_top)

    bottom = model.add(2, 0)
    model.set_shape(bottom, DiskShape(0.0, radius))
    model.add_adjacency(bottom, rim_bottom)
    top = model.add(2, 1)
    model.set_shape(top, DiskShape(height, radius))
    model.add_adjacency(top, rim_top)
    lateral = model.add(2, 2)
    model.set_shape(lateral, LateralShape(radius, 0.0, height))
    model.add_adjacency(lateral, rim_bottom)
    model.add_adjacency(lateral, rim_top)

    region = model.add(3, 0)
    model.set_shape(region, SolidCylinderShape(radius, 0.0, height))
    for face in (bottom, top, lateral):
        model.add_adjacency(region, face)
    return model
