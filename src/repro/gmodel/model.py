"""Non-manifold boundary-representation geometric model.

The geometric model is "the high-level (mesh independent) definition of the
domain, typically a non-manifold boundary representation" (paper, Section II,
citing Weiler's radial-edge structure).  PUMI interacts with it through a
functional interface that answers two kinds of questions:

* topological — the adjacencies of model entities (which model edges bound
  this model face, which model regions are adjacent to this face), and
* geometric — the shape of each entity (point location, projection).

:class:`Model` stores the topology; shapes from
:mod:`repro.gmodel.shapes` are attached per entity and queried through
:meth:`Model.shape`.  Model entities are small immutable handles
``(dim, tag)``, mirroring PUMI's ``gmi_ent``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple


@dataclass(frozen=True, order=True)
class ModelEntity:
    """Immutable handle of a geometric model entity.

    ``dim`` is the topological dimension (0 vertex, 1 edge, 2 face,
    3 region); ``tag`` is a model-unique id within that dimension.
    """

    dim: int
    tag: int

    def __post_init__(self) -> None:
        if not 0 <= self.dim <= 3:
            raise ValueError(f"model entity dimension must be 0..3, got {self.dim}")

    def __repr__(self) -> str:  # G0_5 style, matching the paper's M^d_i
        return f"G{self.dim}_{self.tag}"


class Model:
    """Topological b-rep: entities per dimension plus boundary adjacencies.

    Adjacency is stored one level downward (entity → bounding entities of
    dimension d-1) with the upward direction derived and cached; multi-level
    queries walk the one-level relations.  This matches the paper's "complete
    representation" requirement at the model level: any adjacency is
    retrievable in time independent of model size.
    """

    def __init__(self) -> None:
        self._entities: List[Set[ModelEntity]] = [set(), set(), set(), set()]
        self._down: Dict[ModelEntity, List[ModelEntity]] = {}
        self._up: Dict[ModelEntity, List[ModelEntity]] = {}
        self._shapes: Dict[ModelEntity, Any] = {}

    # -- construction -----------------------------------------------------

    def add(self, dim: int, tag: int) -> ModelEntity:
        """Create (or return the existing) model entity ``(dim, tag)``."""
        ent = ModelEntity(dim, tag)
        if ent not in self._entities[dim]:
            self._entities[dim].add(ent)
            self._down[ent] = []
            self._up[ent] = []
        return ent

    def add_adjacency(self, upper: ModelEntity, lower: ModelEntity) -> None:
        """Record that ``lower`` bounds ``upper`` (dims must differ by one)."""
        self._require(upper)
        self._require(lower)
        if upper.dim != lower.dim + 1:
            raise ValueError(
                f"boundary adjacency must step one dimension: "
                f"{upper} cannot be bounded by {lower}"
            )
        if lower not in self._down[upper]:
            self._down[upper].append(lower)
            self._up[lower].append(upper)

    def set_shape(self, ent: ModelEntity, shape: Any) -> None:
        """Attach a geometric shape evaluator to ``ent``."""
        self._require(ent)
        self._shapes[ent] = shape

    # -- queries ------------------------------------------------------------

    def find(self, dim: int, tag: int) -> Optional[ModelEntity]:
        ent = ModelEntity(dim, tag)
        return ent if ent in self._entities[dim] else None

    def entities(self, dim: int) -> Iterator[ModelEntity]:
        """Iterate entities of one dimension in deterministic (tag) order."""
        return iter(sorted(self._entities[dim]))

    def count(self, dim: int) -> int:
        return len(self._entities[dim])

    def downward(self, ent: ModelEntity) -> List[ModelEntity]:
        """Entities of dimension ``ent.dim - 1`` bounding ``ent``."""
        self._require(ent)
        return list(self._down[ent])

    def upward(self, ent: ModelEntity) -> List[ModelEntity]:
        """Entities of dimension ``ent.dim + 1`` bounded by ``ent``."""
        self._require(ent)
        return list(self._up[ent])

    def adjacent(self, ent: ModelEntity, dim: int) -> List[ModelEntity]:
        """All entities of dimension ``dim`` adjacent to ``ent`` (any gap).

        Walks the one-level boundary relations up or down as needed and
        deduplicates, preserving first-encounter order.
        """
        self._require(ent)
        if dim == ent.dim:
            return [ent]
        step = self._down if dim < ent.dim else self._up
        frontier = [ent]
        while frontier and frontier[0].dim != dim:
            seen: Set[ModelEntity] = set()
            advanced: List[ModelEntity] = []
            for item in frontier:
                for nxt in step[item]:
                    if nxt not in seen:
                        seen.add(nxt)
                        advanced.append(nxt)
            frontier = advanced
        return frontier

    def closure(self, ent: ModelEntity) -> List[ModelEntity]:
        """``ent`` plus every lower-dimension entity on its boundary."""
        result = [ent]
        for dim in range(ent.dim - 1, -1, -1):
            result.extend(self.adjacent(ent, dim))
        return result

    def shape(self, ent: ModelEntity) -> Optional[Any]:
        return self._shapes.get(ent)

    def dim(self) -> int:
        """Highest dimension with any entity (the model's dimension)."""
        for dim in (3, 2, 1, 0):
            if self._entities[dim]:
                return dim
        return 0

    def _require(self, ent: ModelEntity) -> None:
        if ent not in self._entities[ent.dim]:
            raise KeyError(f"{ent} is not part of this model")

    def check(self) -> None:
        """Validate topological consistency; raises ``AssertionError``.

        Every non-top-level entity must bound something, and every entity of
        positive dimension must have a boundary (closed shells excepted for
        dimension-1 loops is not modelled; generated models always satisfy
        this).
        """
        top = self.dim()
        for dim in range(top + 1):
            for ent in self.entities(dim):
                if dim > 0 and not self._down[ent]:
                    raise AssertionError(f"{ent} has an empty boundary")
                if dim < top and not self._up[ent]:
                    raise AssertionError(f"{ent} bounds nothing")
