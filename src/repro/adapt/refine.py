"""Edge-split refinement.

The primitive mesh modification operation behind isotropic refinement: an
edge is split at its (geometry-snapped) midpoint and every element adjacent
to the edge is replaced by two elements using the split templates

* triangle ``(a, b, c)`` with edge ``ab`` → ``(a, m, c)`` + ``(m, b, c)``,
* tetrahedron ``(a, b, c, d)`` with edge ``ab`` → ``(a, m, c, d)`` +
  ``(m, b, c, d)``,

which keep the mesh conforming (every neighbor of the edge is refined in the
same pass over the same midpoint).  The new vertex is classified on the
split edge's geometric classification and snapped to its shape, following
the curved-domain adaptation rule the paper cites.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..gmodel.snap import snap_to_entity
from ..mesh.entity import Ent
from ..mesh.mesh import Mesh


def split_edge(
    mesh: Mesh,
    edge: Ent,
    point: Optional[Sequence[float]] = None,
    snap: bool = True,
    ancestry_tag: Optional[str] = None,
) -> Ent:
    """Split ``edge``; returns the new mid vertex.

    ``point`` overrides the midpoint.  With ``snap`` and a classified mesh,
    the new vertex is projected onto the edge's model entity.  When
    ``ancestry_tag`` names a tag, each child element inherits the parent
    element's tag value (used for the post-adaptation imbalance studies).
    """
    if edge.dim != 1:
        raise ValueError(f"split_edge needs an edge, got {edge}")
    if not mesh.has(edge):
        raise KeyError(f"{edge} is not a live entity")
    a, b = mesh.verts_of(edge)
    dim = mesh.dim()
    elements = mesh.adjacent(edge, dim)
    if not elements:
        raise ValueError(f"{edge} bounds no elements")

    old = []
    tag = mesh.tags.find(ancestry_tag) if ancestry_tag else None
    for element in elements:
        old.append(
            (
                mesh.etype(element),
                mesh.verts_of(element),
                mesh.classification(element),
                tag.get(element) if tag is not None else None,
            )
        )

    gclass = mesh.classification(edge)
    location = (
        np.asarray(point, dtype=float)
        if point is not None
        else 0.5 * (mesh.coords(a) + mesh.coords(b))
    )
    if snap and gclass is not None and mesh.model is not None:
        location = snap_to_entity(mesh.model, gclass, location)
    mid = mesh.create_vertex(location, gclass)

    # Create children first so shared boundary entities stay referenced,
    # then destroy the parents (cascade removes the split edge itself).
    created: List[Ent] = []
    for etype, verts, eclass, ancestor in old:
        for replaced in (a, b):
            child_verts = [mid if v == replaced else v for v in verts]
            child = mesh.create(etype, child_verts, eclass)
            mesh.classify_closure_missing(child)
            created.append(child)
            if tag is not None and ancestor is not None:
                tag.set(child, ancestor)
    for element in elements:
        mesh.destroy(element, cascade=True)
    return mid


def refine_pass(
    mesh: Mesh,
    size,
    ratio: float = 1.5,
    snap: bool = True,
    ancestry_tag: Optional[str] = None,
    max_splits: Optional[int] = None,
) -> int:
    """Split every edge longer than ``ratio`` times its prescribed size.

    Edges are processed longest-relative-to-target first, re-checking each
    edge's existence (earlier splits may have consumed it).  Returns the
    number of splits performed.
    """
    from ..field.sizefield import edge_size_ratio

    over = []
    for edge in mesh.entities(1):
        r = edge_size_ratio(mesh, size, edge)
        if r > ratio:
            over.append((r, edge))
    over.sort(key=lambda item: (-item[0], item[1]))

    splits = 0
    for _r, edge in over:
        if max_splits is not None and splits >= max_splits:
            break
        if not mesh.has(edge):
            continue
        # The edge may have shrunk relative to target since scheduling.
        if edge_size_ratio(mesh, size, edge) <= ratio:
            continue
        split_edge(mesh, edge, snap=snap, ancestry_tag=ancestry_tag)
        splits += 1
    return splits
