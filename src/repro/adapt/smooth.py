"""Mesh quality optimization: vertex smoothing and swap-based cleanup.

"Mesh optimization" is among the FASTMath unstructured-mesh efforts the
paper's introduction lists.  Two standard local operations are provided:

* **Laplacian vertex smoothing with validity guard** — each movable vertex
  steps toward the average of its edge-connected neighbors, accepting the
  move only if every element of its cavity keeps positive measure (and, for
  guarded mode, does not lose quality).  Vertices classified on model
  entities below the mesh dimension slide only along their entity (snapped
  back), so the geometry is preserved.
* **quality-driven driver** — alternating smoothing and (2D) edge-swap
  passes until the worst element quality stops improving.

The distributed variant smooths part-interior vertices only; part-boundary
vertices would need owner-coordinated moves (the same pattern as
coordinated refinement) and are left in place, which keeps every part's
copy consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..gmodel.snap import snap_to_entity
from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from ..mesh.quality import quality
from .swap import swap_pass


def _cavity_worst_quality(mesh: Mesh, vertex: Ent) -> float:
    return min(
        quality(mesh, element)
        for element in mesh.adjacent(vertex, mesh.dim())
    )


def smooth_vertex(
    mesh: Mesh,
    vertex: Ent,
    relaxation: float = 0.5,
    guard_quality: bool = True,
) -> bool:
    """Move one vertex toward its neighbor average; returns True if moved.

    Model-boundary vertices are projected back onto their classification
    after the trial move; model vertices (dim 0) never move.
    """
    gent = mesh.classification(vertex)
    mesh_dim = mesh.dim()
    if gent is not None and gent.dim == 0:
        return False
    neighbors = [
        v
        for edge in mesh.up(vertex)
        for v in mesh.verts_of(edge)
        if v != vertex
    ]
    if not neighbors:
        return False
    target = np.mean([mesh.coords(v) for v in neighbors], axis=0)
    old = mesh.coords(vertex)
    trial = old + relaxation * (target - old)
    if gent is not None and gent.dim < mesh_dim and mesh.model is not None:
        trial = snap_to_entity(mesh.model, gent, trial)
        full = np.zeros(3)
        full[: len(trial)] = trial
        trial = full

    before = _cavity_worst_quality(mesh, vertex) if guard_quality else None
    mesh.set_coords(vertex, trial)
    after = _cavity_worst_quality(mesh, vertex)
    if after <= 0 or (guard_quality and after < before - 1e-12):
        mesh.set_coords(vertex, old)  # reject: inverted or degraded
        return False
    return True


def smooth_pass(
    mesh: Mesh,
    relaxation: float = 0.5,
    guard_quality: bool = True,
    movable=None,
) -> int:
    """One smoothing sweep over all (or ``movable``-filtered) vertices."""
    moved = 0
    for vertex in list(mesh.entities(0)):
        if movable is not None and not movable(vertex):
            continue
        if smooth_vertex(mesh, vertex, relaxation, guard_quality):
            moved += 1
    return moved


@dataclass
class OptimizeStats:
    passes: int = 0
    moved: int = 0
    swaps: int = 0
    initial_worst: float = 0.0
    final_worst: float = 0.0

    def summary(self) -> str:
        return (
            f"quality optimization: worst {self.initial_worst:.3f} -> "
            f"{self.final_worst:.3f} in {self.passes} pass(es) "
            f"({self.moved} moves, {self.swaps} swaps)"
        )


def optimize_quality(
    mesh: Mesh,
    max_passes: int = 5,
    relaxation: float = 0.5,
    do_swap: bool = True,
) -> OptimizeStats:
    """Alternate smoothing and swapping until worst quality stops rising."""
    from ..mesh.quality import worst_quality

    stats = OptimizeStats(initial_worst=worst_quality(mesh))
    previous = stats.initial_worst
    for _pass in range(max_passes):
        moved = smooth_pass(mesh, relaxation)
        swaps = swap_pass(mesh) if (do_swap and mesh.dim() == 2) else 0
        stats.passes += 1
        stats.moved += moved
        stats.swaps += swaps
        current = worst_quality(mesh)
        if moved == 0 and swaps == 0:
            break
        if current <= previous + 1e-12 and _pass > 0:
            break
        previous = current
    stats.final_worst = worst_quality(mesh)
    return stats


def smooth_distributed(dmesh, relaxation: float = 0.5, passes: int = 3) -> int:
    """Smooth part-interior vertices of every part of a distributed mesh.

    Shared vertices stay fixed (their coordinated move would need the owner
    protocol), so copies remain byte-identical and no exchange is needed;
    the caller's next verify() sees a consistent distribution.
    """
    total = 0
    for _pass in range(passes):
        moved = 0
        for part in dmesh:
            moved += smooth_pass(
                part.mesh,
                relaxation,
                movable=lambda v, part=part: (
                    not part.is_shared(v) and not part.is_ghost(v)
                ),
            )
        total += moved
        if moved == 0:
            break
    return total
