"""2D edge swapping for element quality improvement.

The classic local reconnection: an interior edge shared by triangles
``(a, b, c)`` and ``(b, a, d)`` is replaced by the opposite diagonal,
producing ``(a, d, c)`` and ``(d, b, c)``, when that raises the minimum
quality of the pair.  Swaps only apply to edges classified on the model
interior (boundary edges trace the geometry and must stay).
"""

from __future__ import annotations

from typing import Optional

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from ..mesh.quality import mean_ratio_tri
from ..mesh.topology import TRI


def swap_edge(mesh: Mesh, edge: Ent, min_gain: float = 1e-9) -> bool:
    """Swap one interior 2D edge if it improves minimum quality."""
    if mesh.dim() != 2:
        raise ValueError("edge swapping is implemented for 2D meshes")
    if edge.dim != 1 or not mesh.has(edge):
        raise ValueError(f"{edge} is not a live edge")
    faces = mesh.up(edge)
    if len(faces) != 2:
        return False  # boundary edge
    gclass = mesh.classification(edge)
    if gclass is not None and gclass.dim < 2:
        return False  # geometry edge, not swappable

    a, b = mesh.verts_of(edge)
    opposite = []
    for face in faces:
        if mesh.etype(face) != TRI:
            return False
        others = [v for v in mesh.verts_of(face) if v not in (a, b)]
        opposite.append(others[0])
    c, d = opposite
    if c == d or mesh.find(1, [c, d]) is not None:
        return False  # diagonal already exists elsewhere

    pa, pb = mesh.coords(a), mesh.coords(b)
    pc, pd = mesh.coords(c), mesh.coords(d)
    before = min(mean_ratio_tri(pa, pb, pc), mean_ratio_tri(pb, pa, pd))
    # Candidate pair (keep counter-clockwise orientation).
    q1 = mean_ratio_tri(pa, pd, pc)
    q2 = mean_ratio_tri(pd, pb, pc)
    after = min(q1, q2)
    if after <= before + min_gain or after <= 0:
        return False

    classifications = [mesh.classification(f) for f in faces]
    tri1 = mesh.create(TRI, [a, d, c], classifications[0])
    tri2 = mesh.create(TRI, [d, b, c], classifications[1])
    mesh.classify_closure_missing(tri1)
    mesh.classify_closure_missing(tri2)
    for face in faces:
        mesh.destroy(face, cascade=True)
    assert mesh.has(tri1) and mesh.has(tri2)
    return True


def swap_pass(mesh: Mesh, max_swaps: Optional[int] = None) -> int:
    """Attempt to swap every interior edge once; returns swaps performed."""
    swaps = 0
    for edge in list(mesh.entities(1)):
        if max_swaps is not None and swaps >= max_swaps:
            break
        if not mesh.has(edge):
            continue
        if swap_edge(mesh, edge):
            swaps += 1
    return swaps
