"""Size-field-driven mesh adaptation driver.

Alternates refinement and coarsening passes until every edge is within the
size-field band (or the pass budget runs out), optionally finishing 2D
meshes with quality edge swaps — the isotropic core of the adaptive loop
the paper's Figs. 7 and 8 illustrate (shock tracking on the scramjet,
moving refinement zones in the accelerator).

Ancestry tracking: pass ``ancestry_tag`` to stamp every initial element
with a label and have all descendants inherit it.  The Fig. 13 experiment
uses part ids as labels, so post-adaptation per-part element counts can be
measured without running the adaptation distributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..field.sizefield import SizeField, edge_size_ratio
from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from .coarsen import coarsen_pass
from .refine import refine_pass
from .swap import swap_pass


@dataclass
class AdaptStats:
    """Outcome of one adaptation run."""

    passes: int = 0
    splits: int = 0
    collapses: int = 0
    swaps: int = 0
    initial_elements: int = 0
    final_elements: int = 0
    converged: bool = False

    def summary(self) -> str:
        return (
            f"adapt: {self.initial_elements} -> {self.final_elements} "
            f"elements in {self.passes} pass(es) "
            f"({self.splits} splits, {self.collapses} collapses, "
            f"{self.swaps} swaps)"
            + ("" if self.converged else " [pass budget reached]")
        )


def seed_ancestry(
    mesh: Mesh, tag_name: str, label_of: Optional[Callable[[Ent], Any]] = None
) -> None:
    """Stamp every current element with an ancestry label (default: own id)."""
    tag = mesh.tag(tag_name)
    dim = mesh.dim()
    for element in mesh.entities(dim):
        tag.set(element, label_of(element) if label_of else element.idx)


def ancestry_counts(mesh: Mesh, tag_name: str) -> Dict[Any, int]:
    """Element count per ancestry label (the Fig. 13 measurement)."""
    tag = mesh.tags.find(tag_name)
    if tag is None:
        raise KeyError(f"no ancestry tag {tag_name!r}")
    counts: Dict[Any, int] = {}
    dim = mesh.dim()
    for element in mesh.entities(dim):
        label = tag.get(element)
        counts[label] = counts.get(label, 0) + 1
    return counts


def adapt(
    mesh: Mesh,
    size: SizeField,
    max_passes: int = 10,
    refine_ratio: float = 1.5,
    coarsen_ratio: float = 0.45,
    do_coarsen: bool = True,
    do_swap: bool = False,
    snap: bool = True,
    ancestry_tag: Optional[str] = None,
) -> AdaptStats:
    """Adapt ``mesh`` to the size field in place; returns statistics.

    ``refine_ratio``/``coarsen_ratio`` bound the acceptable edge-length band
    relative to the prescribed size (defaults give the standard
    [0.45, 1.5] band whose midpoint operations converge).
    """
    dim = mesh.dim()
    stats = AdaptStats(initial_elements=mesh.count(dim))
    for _pass in range(max_passes):
        splits = refine_pass(
            mesh, size, ratio=refine_ratio, snap=snap,
            ancestry_tag=ancestry_tag,
        )
        collapses = (
            coarsen_pass(
                mesh, size, ratio=coarsen_ratio, ancestry_tag=ancestry_tag
            )
            if do_coarsen
            else 0
        )
        swaps = swap_pass(mesh) if (do_swap and dim == 2) else 0
        stats.passes += 1
        stats.splits += splits
        stats.collapses += collapses
        stats.swaps += swaps
        if splits == 0 and collapses == 0:
            stats.converged = True
            break
    stats.final_elements = mesh.count(dim)
    return stats


def conformity(mesh: Mesh, size: SizeField) -> Dict[str, float]:
    """How well edge lengths match the size field: fraction in-band, extremes."""
    total = 0
    in_band = 0
    worst_long = 0.0
    worst_short = float("inf")
    for edge in mesh.entities(1):
        r = edge_size_ratio(mesh, size, edge)
        total += 1
        if 0.45 <= r <= 1.5:
            in_band += 1
        worst_long = max(worst_long, r)
        worst_short = min(worst_short, r)
    return {
        "edges": float(total),
        "in_band_fraction": in_band / total if total else 1.0,
        "max_ratio": worst_long,
        "min_ratio": worst_short if total else 0.0,
    }
