"""Mesh adaptation: size-field-driven refinement, coarsening, and swapping.

The mesh-modification services the paper's adaptive workflows rely on
(scramjet shock tracking in Fig. 7, accelerator particle tracking in Fig. 8,
and the post-adaptation imbalance study of Fig. 13).
"""

from .adapt import AdaptStats, adapt, ancestry_counts, conformity, seed_ancestry
from .coarsen import (
    can_collapse_classification,
    coarsen_pass,
    collapse_edge,
)
from .estimate import (
    estimate_counts_by_label,
    estimate_element_count,
    estimation_error,
)
from .refine import refine_pass, split_edge
from .smooth import (
    OptimizeStats,
    optimize_quality,
    smooth_distributed,
    smooth_pass,
    smooth_vertex,
)
from .swap import swap_edge, swap_pass

__all__ = [
    "AdaptStats",
    "OptimizeStats",
    "adapt",
    "ancestry_counts",
    "can_collapse_classification",
    "coarsen_pass",
    "collapse_edge",
    "conformity",
    "estimate_counts_by_label",
    "estimate_element_count",
    "estimation_error",
    "optimize_quality",
    "refine_pass",
    "seed_ancestry",
    "smooth_distributed",
    "smooth_pass",
    "smooth_vertex",
    "split_edge",
    "swap_edge",
    "swap_pass",
]
