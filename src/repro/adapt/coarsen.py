"""Edge-collapse coarsening.

The inverse primitive of refinement: collapsing edge ``(a, b)`` removes
vertex ``a`` by sliding it onto ``b``.  Elements containing both endpoints
degenerate and disappear; the remaining elements of ``a``'s cavity are
rebuilt with ``b`` in ``a``'s place.  A collapse is rejected when it would

* move a vertex off its geometric classification (``a`` must be classified
  on a model entity in the closure of ``b``'s — collapsing an interior
  vertex is always fine, collapsing a boundary vertex along its own model
  edge/face is fine, but collapsing a model vertex or across model entities
  would change the domain), or
* invert or degenerate any rebuilt element (checked by signed measure), or
* produce an element that already exists (topological collision).

Rejected collapses leave the mesh untouched.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..mesh.entity import Ent
from ..mesh.mesh import Mesh
from ..mesh.quality import measure


def can_collapse_classification(mesh: Mesh, a: Ent, b: Ent) -> bool:
    """Whether removing ``a`` by sliding onto ``b`` respects the geometry."""
    ga = mesh.classification(a)
    if ga is None or mesh.model is None:
        return True  # unclassified meshes have no geometric constraint
    gb = mesh.classification(b)
    if ga.dim == 0:
        return False  # model vertices are immovable
    mesh_dim = mesh.dim()
    if ga.dim == mesh_dim:
        return True  # interior vertex
    # Boundary vertex: b must lie on the same model entity (or its closure
    # boundary would be distorted).
    return gb is not None and (gb == ga or gb in mesh.model.closure(ga))


def collapse_edge(
    mesh: Mesh,
    edge: Ent,
    keep: Optional[Ent] = None,
    min_quality: float = 1e-10,
    ancestry_tag: Optional[str] = None,
) -> bool:
    """Collapse ``edge``; returns True on success, False if rejected.

    ``keep`` selects the surviving endpoint (default: try both, preferring
    the one whose collapse is geometrically legal).
    """
    if edge.dim != 1 or not mesh.has(edge):
        raise ValueError(f"{edge} is not a live edge")
    va, vb = mesh.verts_of(edge)
    candidates = []
    if keep is None:
        candidates = [(va, vb), (vb, va)]  # (removed, kept)
    elif keep == va:
        candidates = [(vb, va)]
    elif keep == vb:
        candidates = [(va, vb)]
    else:
        raise ValueError(f"{keep} is not an endpoint of {edge}")

    for removed, kept in candidates:
        if not can_collapse_classification(mesh, removed, kept):
            continue
        if _try_collapse(mesh, removed, kept, min_quality, ancestry_tag):
            return True
    return False


def _try_collapse(
    mesh: Mesh, removed: Ent, kept: Ent, min_quality: float, ancestry_tag
) -> bool:
    dim = mesh.dim()
    cavity = mesh.adjacent(removed, dim)
    tag = mesh.tags.find(ancestry_tag) if ancestry_tag else None

    rebuilt = []
    kept_coords = mesh.coords(kept)
    for element in cavity:
        verts = mesh.verts_of(element)
        if kept in verts:
            continue  # degenerates away
        new_verts = [kept if v == removed else v for v in verts]
        # Geometric check: simulate by evaluating the measure with the kept
        # vertex's coordinates in place of the removed one.
        pts = [
            kept_coords if v == removed else mesh.coords(v) for v in verts
        ]
        if _simplex_measure(pts) <= min_quality:
            return False
        if mesh.find(dim, new_verts) is not None:
            return False  # would duplicate an existing element
        rebuilt.append(
            (
                mesh.etype(element),
                new_verts,
                mesh.classification(element),
                tag.get(element) if tag is not None else None,
            )
        )

    # Commit: build replacements first, then drop the whole old cavity.
    created = []
    for etype, verts, eclass, ancestor in rebuilt:
        child = mesh.create(etype, verts, eclass)
        mesh.classify_closure_missing(child)
        created.append(child)
        if tag is not None and ancestor is not None:
            tag.set(child, ancestor)
    for element in cavity:
        mesh.destroy(element, cascade=True)
    return True


def _simplex_measure(pts: List[np.ndarray]) -> float:
    if len(pts) == 3:
        a, b, c = pts
        return 0.5 * (
            (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
        )
    if len(pts) == 4:
        a, b, c, d = pts
        return float(np.linalg.det(np.stack([b - a, c - a, d - a]))) / 6.0
    raise ValueError("collapse supports simplex meshes (tri/tet)")


def coarsen_pass(
    mesh: Mesh,
    size,
    ratio: float = 0.5,
    ancestry_tag: Optional[str] = None,
    max_collapses: Optional[int] = None,
) -> int:
    """Collapse edges shorter than ``ratio`` times their prescribed size.

    Shortest-relative-to-target first; returns collapses performed.
    """
    from ..field.sizefield import edge_size_ratio

    under = []
    for edge in mesh.entities(1):
        r = edge_size_ratio(mesh, size, edge)
        if r < ratio:
            under.append((r, edge))
    under.sort(key=lambda item: (item[0], item[1]))

    collapses = 0
    for _r, edge in under:
        if max_collapses is not None and collapses >= max_collapses:
            break
        if not mesh.has(edge):
            continue
        if edge_size_ratio(mesh, size, edge) >= ratio:
            continue
        if collapse_edge(mesh, edge, ancestry_tag=ancestry_tag):
            collapses += 1
    return collapses
