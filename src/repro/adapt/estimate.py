"""Post-adaptation entity count estimation.

Predictive load balancing needs the estimated target mesh resolution turned
into expected element counts before the adaptation runs (paper, Section
III-B).  These helpers aggregate the per-element predictions of
:mod:`repro.core.predictive` into totals and per-label (per-part) forecasts
that the benchmarks compare against the realized post-adaptation counts.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..core.predictive import predicted_element_weight
from ..field.sizefield import SizeField
from ..mesh.mesh import Mesh


def estimate_element_count(mesh: Mesh, size: SizeField) -> float:
    """Expected number of elements after adapting ``mesh`` to ``size``."""
    dim = mesh.dim()
    return float(
        sum(
            predicted_element_weight(mesh, e, size)
            for e in mesh.entities(dim)
        )
    )


def estimate_counts_by_label(
    mesh: Mesh, size: SizeField, tag_name: str
) -> Dict[Any, float]:
    """Expected post-adaptation element count per ancestry label."""
    tag = mesh.tags.find(tag_name)
    if tag is None:
        raise KeyError(f"no ancestry tag {tag_name!r}")
    dim = mesh.dim()
    estimates: Dict[Any, float] = {}
    for element in mesh.entities(dim):
        label = tag.get(element)
        estimates[label] = estimates.get(label, 0.0) + predicted_element_weight(
            mesh, element, size
        )
    return estimates


def estimation_error(
    estimated: Dict[Any, float], realized: Dict[Any, int]
) -> float:
    """Relative L1 error of per-label estimates against realized counts."""
    labels = set(estimated) | set(realized)
    total_real = sum(realized.values())
    if total_real == 0:
        return 0.0
    err = sum(
        abs(estimated.get(k, 0.0) - realized.get(k, 0)) for k in labels
    )
    return err / total_real
