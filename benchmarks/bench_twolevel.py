"""Section II-D: two-level (node-then-core) architecture-aware partitioning.

Paper reference: "a hybrid mesh partitioning algorithm which involves first
partitioning a mesh into nodes and subsequently to the cores on the nodes.
Part handles assigned to threads on the same node shared memory should
result in faster communications and reduced memory usage" — an on-node part
boundary entity "exists implicitly in shared memory" while an off-node one
"is duplicated on all off-node residence parts ... in distributed memory".

The benchmark measures the fraction of shared entity copies that are
on-node (implicit / free) for the two-level partition versus a flat
partition whose part ids carry no node structure (a random renumbering of
the global partition — what an application gets when rank placement ignores
the partitioner's ordering).  Shape expectation: two-level locality is high
by construction and collapses for the placement-oblivious flat case.
"""

import numpy as np

from common import params, write_result

from repro.parallel import MachineTopology
from repro.partitioners import (
    boundary_locality,
    partition,
    two_level_partition,
)
from repro.workloads import aaa_mesh


def test_two_level_locality(benchmark):
    p = params()
    mesh = aaa_mesh(n=p["aaa_n"])
    nodes = 4
    cores = max(p["aaa_parts"] // nodes, 2)
    topo = MachineTopology(nodes=nodes, cores_per_node=cores)
    results = {}

    def run():
        results["two_level"] = two_level_partition(mesh, topo, seed=1)
        results["flat"] = partition(
            mesh, topo.total_cores, method="hypergraph", seed=1
        )
        rng = np.random.default_rng(0)
        results["flat_shuffled"] = rng.permutation(topo.total_cores)[
            results["flat"]
        ]
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    fractions = {
        name: boundary_locality(mesh, assignment, topo)["on_node_fraction"]
        for name, assignment in results.items()
    }
    lines = [
        f"AAA-surrogate, {mesh.count(3)} tets, "
        f"{nodes} nodes x {cores} cores",
        "partition,on_node_fraction",
    ]
    for name, fraction in fractions.items():
        lines.append(f"{name},{fraction:.3f}")
    lines.append("")
    lines.append("paper: on-node boundaries live implicitly in shared "
                 "memory; two-level partitioning maximizes them")
    write_result("twolevel", lines)
    benchmark.extra_info["on_node_fraction"] = {
        k: round(v, 3) for k, v in fractions.items()
    }

    # Two-level locality is structural: it beats placement-oblivious flat
    # partitioning decisively and stays near the well-ordered flat result.
    assert fractions["two_level"] > fractions["flat_shuffled"] + 0.15
    assert fractions["two_level"] > fractions["flat"] - 0.12
