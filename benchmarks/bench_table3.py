"""Table III: ParMA runs in a small fraction of the hypergraph method's time.

Paper reference (Jaguar, 512 cores, 32 parts/process):

    T0 (Zoltan hypergraph)  249 s
    T1 (ParMA Vtx>Rgn)      6.6 s
    T2                      8.8 s
    T3                      5.5 s
    T4                      5.5 s

Shape expectation: every ParMA configuration completes in well under half
the baseline partitioning time (the paper's ratio is ~30-45x; a pure-Python
diffusion loop gives up some of that, the ordering must hold regardless).
"""

import time

import pytest

from common import write_result

from repro.core import ParMA

CONFIGS = [
    ("T1", "Vtx > Rgn"),
    ("T2", "Vtx = Edge > Rgn"),
    ("T3", "Edge > Rgn"),
    ("T4", "Edge = Face > Rgn"),
]


def test_parma_faster_than_hypergraph(benchmark, aaa_case):
    timings = {"T0": aaa_case.t0_seconds}

    def run_all():
        for label, priorities in CONFIGS:
            dmesh = aaa_case.distribute()
            start = time.perf_counter()
            ParMA(dmesh).improve(priorities, tol=0.05)
            timings[label] = time.perf_counter() - start
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"{'Test':<6} {'Time (sec.)':>12}"]
    for label in ("T0", "T1", "T2", "T3", "T4"):
        lines.append(f"{label:<6} {timings[label]:>12.2f}")
    lines.append("")
    lines.append("paper: T0 249s, T1 6.6s, T2 8.8s, T3 5.5s, T4 5.5s")
    write_result("table3", lines)
    benchmark.extra_info["timings"] = {
        k: round(v, 3) for k, v in timings.items()
    }

    # The paper's ordering: every ParMA configuration is cheaper than the
    # baseline partitioner.  (The paper's 30-45x factor needs its scale —
    # PHG's cost grows much faster with parts/elements than diffusion's, so
    # the margin widens at REPRO_BENCH_SCALE=medium/large.)
    for label, _priorities in CONFIGS:
        assert timings[label] < timings["T0"] * 0.9, (
            f"{label} took {timings[label]:.2f}s vs baseline "
            f"{timings['T0']:.2f}s — the paper's ordering is violated"
        )
