"""A/B microbenchmark: SoA/CSR mesh core vs the legacy object store.

Builds one mesh, mirrors its topology into the legacy per-entity
``EntityStore`` (Python lists of tuples), and times three microkernels both
ways:

* ``entity_iteration`` — enumerate every live entity of every dimension and
  fold its id into a checksum;
* ``down_adjacency`` — for every element, walk its vertex tuple (the
  downward closure hot path of migration and IO);
* ``up_adjacency`` — for every element, count the elements sharing each of
  its vertices (the vertex→element second-adjacency kernel of ghosting).

Each kernel computes the same integer checksum on both cores, asserted
equal, so the speedup compares equivalent work.  The refactor's acceptance
gate is a >=2x speedup on the iteration and adjacency kernels.

Usage::

    PYTHONPATH=src python benchmarks/bench_mesh_core.py [--quick]

Results land in ``benchmarks/results/mesh_core.txt`` plus the
machine-readable ``BENCH_mesh_core.json`` (consumed by the CI perf gate).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import write_result

from repro.mesh import box_tet, rect_tri
from repro.mesh.store import EntityStore

QUICK = {"mesh": "rect_tri", "n": 24, "reps": 3}
FULL = {"mesh": "box_tet", "n": 12, "reps": 5}

GATE_SPEEDUP = 2.0


def build(p):
    if p["mesh"] == "rect_tri":
        return rect_tri(p["n"])
    return box_tet(p["n"])


def legacy_mirror(mesh):
    """Replay the mesh's topology into legacy per-entity object stores."""
    core = mesh.core
    stores = [EntityStore(d) for d in range(4)]
    for dim in range(4):
        ids = core.live_ids(dim).tolist()
        # Legacy ids are dense appends; fresh meshes have dense handles too,
        # so the mirror shares the core's numbering.
        for idx in ids:
            assert idx == len(stores[dim]._etype), "mirror needs dense ids"
            stores[dim].create(
                int(core.etype[dim][idx]),
                core.verts_row(dim, idx),
                core.down_row(dim, idx),
            )
        for idx in ids:
            for upper in core.up_row(dim, idx):
                stores[dim].add_up(idx, upper)
    return stores


def best_of(fn, reps):
    best = float("inf")
    value = None
    for _ in range(reps):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


# -- kernels: legacy object-store versions ----------------------------------


def legacy_entity_iteration(stores):
    acc = 0
    for dim in range(4):
        for idx in stores[dim].indices():
            acc += idx
    return acc


def legacy_down_adjacency(stores, dim):
    acc = 0
    store = stores[dim]
    for idx in store.indices():
        for v in store.verts(idx):
            acc += v
    return acc


def legacy_up_adjacency(stores, dim):
    acc = 0
    store = stores[dim]
    verts = stores[0]
    for idx in store.indices():
        for v in store.verts(idx):
            acc += verts.up_count(v)
    return acc


# -- kernels: SoA core versions ---------------------------------------------


def core_entity_iteration(core):
    acc = 0
    for dim in range(4):
        acc += int(core.live_ids(dim).sum(dtype="int64"))
    return acc


def core_down_adjacency(core, dim):
    ids = core.live_ids(dim)
    return int(core.verts_matrix(dim, ids).sum(dtype="int64"))


def core_up_adjacency(core, dim):
    ids = core.live_ids(dim)
    vmat = core.verts_matrix(dim, ids)
    return int(core.nup[0][vmat].sum(dtype="int64"))


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    p = QUICK if args.quick else FULL

    mesh = build(p)
    core = mesh.core
    dim = mesh.dim()
    stores = legacy_mirror(mesh)
    reps = p["reps"]

    kernels = [
        ("entity_iteration",
         lambda: legacy_entity_iteration(stores),
         lambda: core_entity_iteration(core)),
        ("down_adjacency",
         lambda: legacy_down_adjacency(stores, dim),
         lambda: core_down_adjacency(core, dim)),
        ("up_adjacency",
         lambda: legacy_up_adjacency(stores, dim),
         lambda: core_up_adjacency(core, dim)),
    ]

    counts = {d: len(core.live_ids(d)) for d in range(4)}
    lines = [
        f"mesh={p['mesh']} n={p['n']} entities=" +
        "/".join(str(counts[d]) for d in range(4)),
    ]
    extra = {"params": dict(p), "entities": {str(d): counts[d] for d in range(4)},
             "gate_speedup": GATE_SPEEDUP, "kernels": {}}

    ok = True
    for name, legacy_fn, core_fn in kernels:
        t_legacy, chk_legacy = best_of(legacy_fn, reps)
        t_core, chk_core = best_of(core_fn, reps)
        assert chk_legacy == chk_core, (
            f"{name}: checksum mismatch {chk_legacy} != {chk_core}"
        )
        speedup = t_legacy / t_core if t_core > 0 else float("inf")
        ok = ok and speedup >= GATE_SPEEDUP
        lines.append(
            f"{name}: legacy={t_legacy * 1e3:.3f}ms soa={t_core * 1e3:.3f}ms "
            f"speedup={speedup:.1f}x checksum={chk_core}"
        )
        extra["kernels"][name] = {
            "legacy_seconds": t_legacy,
            "soa_seconds": t_core,
            "speedup": speedup,
            "checksum": chk_core,
        }

    lines.append(f"gate: all kernels >= {GATE_SPEEDUP}x -> "
                 f"{'PASS' if ok else 'FAIL'}")
    extra["gate_pass"] = ok
    write_result("mesh_core", lines, extra=extra)
    print("\n".join(lines))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
