"""A/B parity gate: star-forest services vs the frozen legacy exchanges.

The migrate/ghost/sync/accumulate services were re-expressed over the
:class:`repro.parallel.sf.StarForest` primitive; the hand-rolled
implementations they replaced live on, verbatim, in
:mod:`repro.partition.legacy`.  This benchmark runs the same workload —
one ghost layer plus field synchronize + accumulate on identical meshes —
through both paths and asserts the redesign is free:

* **identical results** — owned-entity invariants and field checksums
  match bit-for-bit;
* **no more supersteps** — the SF path's exchange count is <= legacy's;
* **no more encoded wire bytes** — the SF path's coalesced buffers are
  byte-for-byte no larger (in fact identical: the forest's sorted
  traversal reproduces the legacy batch layouts exactly).

Usage::

    PYTHONPATH=src python benchmarks/bench_sf_parity.py [--quick]

Results land in ``benchmarks/results/sf_parity.txt`` and the
machine-readable ``BENCH_sf_parity.json`` (uploaded by the CI ``sf-parity``
job, which fails the build on any regression).
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import write_result

from repro.mesh import box_tet, rect_tri
from repro.obs.stats import CommProbe
from repro.parallel import PerfCounters
from repro.partition import (
    DistributedField,
    accumulate,
    distribute,
    ghost_layer,
    synchronize,
)
from repro.partition.legacy import (
    legacy_accumulate,
    legacy_ghost_layer,
    legacy_synchronize,
)

QUICK = {"mesh": "rect_tri", "n": 8, "parts": 4}
FULL = {"mesh": "box_tet", "n": 4, "parts": 8}


def strip(mesh, nparts, axis=0):
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def build(p):
    if p["mesh"] == "rect_tri":
        return rect_tri(p["n"])
    return box_tet(p["n"])


def checksum(dm, dfield):
    values = []
    for part in dm:
        field = dfield.on(part.pid)
        for v in part.mesh.entities(0):
            if part.owns(v) and not part.is_ghost(v) and field.has(v):
                values.append(field.get_scalar(v))
    return math.fsum(values)


def run_arm(arm: str, p: dict) -> dict:
    """One measurement arm on a fresh mesh and counter registry.

    The legacy path only supports depth-1 regions exactly (deeper rings
    truncate at part corners), so the A/B compares depth 1.
    """
    mesh = build(p)
    counters = PerfCounters()
    dm = distribute(mesh, strip(mesh, p["parts"]), counters=counters)
    probe = CommProbe(counters)

    if arm == "sf":
        gstats = ghost_layer(dm)
    else:
        gstats = legacy_ghost_layer(dm, bridge_dim=0, layers=1)
    dm.verify()

    field = DistributedField(dm, "u")
    field.set_from_coords(lambda x: 1.0 + x[0] + 2.0 * x[1])
    if arm == "sf":
        sstats = synchronize(field)
        astats = accumulate(field)
    else:
        sstats = legacy_synchronize(field)
        astats = legacy_accumulate(field)
    assert field.max_copy_disagreement() == 0

    return {
        "arm": arm,
        "ghosts_created": int(gstats.ghosts_created),
        "values_sent": int(sstats.values_sent + astats.values_sent),
        "checksum": checksum(dm, field),
        "supersteps": int(probe.supersteps()),
        "encoded_bytes": int(probe.encoded_bytes()),
        "wire_bytes": int(probe.wire_bytes()),
        "messages": int(probe.messages()),
        "sf_ops": int(gstats.sf_ops + sstats.sf_ops + astats.sf_ops),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small mesh for the CI parity gate",
    )
    args = parser.parse_args(argv)
    p = QUICK if args.quick else FULL

    sf = run_arm("sf", p)
    legacy = run_arm("legacy", p)

    rows = ["arm,supersteps,encoded_bytes,wire_bytes,messages,ghosts,checksum"]
    for r in (sf, legacy):
        rows.append(
            f"{r['arm']},{r['supersteps']},{r['encoded_bytes']},"
            f"{r['wire_bytes']},{r['messages']},{r['ghosts_created']},"
            f"{r['checksum']:.12g}"
        )
    rows.append("")
    rows.append(
        f"supersteps: sf={sf['supersteps']} legacy={legacy['supersteps']}"
    )
    rows.append(
        f"encoded bytes: sf={sf['encoded_bytes']} "
        f"legacy={legacy['encoded_bytes']}"
    )
    rows.append(f"sf path executed {sf['sf_ops']} star-forest op(s)")

    failures = []
    if sf["ghosts_created"] != legacy["ghosts_created"]:
        failures.append(
            f"ghost regions differ: sf={sf['ghosts_created']} "
            f"legacy={legacy['ghosts_created']}"
        )
    if sf["checksum"] != legacy["checksum"]:
        failures.append(
            f"field checksums differ: sf={sf['checksum']!r} "
            f"legacy={legacy['checksum']!r}"
        )
    if sf["supersteps"] > legacy["supersteps"]:
        failures.append(
            f"sf path costs more supersteps: {sf['supersteps']} > "
            f"{legacy['supersteps']}"
        )
    if sf["encoded_bytes"] > legacy["encoded_bytes"]:
        failures.append(
            f"sf path encodes more bytes: {sf['encoded_bytes']} > "
            f"{legacy['encoded_bytes']}"
        )

    write_result(
        "sf_parity",
        rows + [f"FAIL: {f}" for f in failures],
        extra={
            "params": p,
            "sf": sf,
            "legacy": legacy,
            "parity_ok": not failures,
        },
    )
    print("\n".join(rows))
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
