"""Section III-A: local partitioning grows vertex spikes; ParMA repairs them.

Paper reference: the 1.5M-part partition for Mira is "created by locally
partitioning each part of a 16,384 part mesh with Zoltan Hypergraph to 96
parts.  The initial peak vertex imbalance of the 1.5M part mesh is 54% while
the initial peak vertex imbalance of the 16,384 part mesh is 9%", and
"initial tests specifying Vtx > Rgn on the 1.5M part mesh improve vertex
imbalance by more then 10%".

The benchmark partitions the AAA mesh to P parts (global partitioner),
locally splits every part by the scale's factor, and measures the vertex
imbalance growth; ParMA Vtx > Rgn then runs on the split partition.  Shape
expectations: peak vertex imbalance grows substantially under local
partitioning, and ParMA recovers more than 10 percentage points of it.
"""

import numpy as np

from common import fmt_pct, params, write_result

from repro.core import ParMA, imbalance_of
from repro.partition import distribute
from repro.partitioners import local_partition, partition
from repro.workloads import aaa_mesh


def test_local_partitioning_spikes_and_parma(benchmark):
    p = params()
    base_parts = max(p["aaa_parts"] // 4, 2)
    factor = p["local_factor"]
    mesh = aaa_mesh(n=p["aaa_n"])
    assignment = partition(mesh, base_parts, method="hypergraph", seed=1)
    dmesh = distribute(mesh, assignment, nparts=base_parts)
    before = imbalance_of(dmesh.entity_counts(), 0)

    def run():
        local_partition(dmesh, factor, seed=3)
        return dmesh

    benchmark.pedantic(run, rounds=1, iterations=1)
    dmesh.verify()
    after_split = imbalance_of(dmesh.entity_counts(), 0)

    stats = ParMA(dmesh).improve("Vtx > Rgn", tol=0.05, max_iterations=40)
    after_parma = imbalance_of(dmesh.entity_counts(), 0)
    dmesh.verify()

    lines = [
        f"AAA-surrogate, {mesh.count(3)} tets: "
        f"{base_parts} parts -> x{factor} local split -> "
        f"{dmesh.nparts} parts",
        f"peak Vtx imbalance {base_parts} parts:        {fmt_pct(before)}%",
        f"peak Vtx imbalance after local split:  {fmt_pct(after_split)}%",
        f"peak Vtx imbalance after ParMA Vtx>Rgn: {fmt_pct(after_parma)}%"
        f"  ({stats.total_migrated} elements migrated, {stats.seconds:.2f}s)",
        "",
        "paper: 9% at 16,384 parts -> 54% after x96 local split; "
        "ParMA Vtx>Rgn improves by >10 points",
    ]
    write_result("local_split", lines)
    benchmark.extra_info["vtx_imb_pct"] = {
        "base": fmt_pct(before),
        "split": fmt_pct(after_split),
        "parma": fmt_pct(after_parma),
    }

    # Local partitioning inflates the vertex spike substantially...
    growth = after_split - before
    assert growth > 0.05
    # ...and ParMA recovers a large share of the inflicted spike (the
    # paper's Mira test recovers >10 of 45 points, i.e. >20% relative).
    assert (after_split - after_parma) / growth > 0.35
