"""Figs. 7 & 8: adaptive meshing on the scramjet and accelerator workloads.

The paper's figures are mesh images (initial/adapted scramjet inlet, three
accelerator snapshots); the measurable content reproduced here:

* Fig. 7 (scramjet) — adaptation concentrates elements along the shock
  train: the adapted mesh grows, and the band around the shocks holds a
  disproportionate share of elements at much finer local size.
* Fig. 8 (accelerator) — the refinement zone follows the particle: after
  each step the fine region sits at the new position and the old one has
  coarsened back.
"""

import numpy as np

from common import params, write_result

from repro.adapt import adapt, conformity
from repro.workloads import (
    accelerator_mesh,
    scramjet_case,
    track_particle,
)


def test_fig7_scramjet_adaptation(benchmark):
    n = max(params()["wing_n"] - 2, 6)
    mesh, size = scramjet_case(n=n, refinement=4.0)
    initial = mesh.count(2)

    def run():
        return adapt(mesh, size, max_passes=8, do_swap=True)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report = conformity(mesh, size)

    # Element share inside the shock bands (size requests below midpoint).
    midpoint = 0.5 * (1.0 / n + (1.0 / n) / 4.0)
    in_band = sum(
        1 for f in mesh.entities(2) if size.value(mesh.centroid(f)) < midpoint
    )
    share = in_band / mesh.count(2)

    lines = [
        f"scramjet channel: {initial} -> {stats.final_elements} triangles "
        f"({stats.splits} splits, {stats.collapses} collapses, "
        f"{stats.swaps} swaps)",
        f"size-field conformity: {report['in_band_fraction']:.1%} of edges "
        f"in band (max ratio {report['max_ratio']:.2f})",
        f"shock-band element share: {share:.1%}",
        "",
        "paper: Fig. 7 adapted mesh concentrates resolution along the "
        "inlet shock train",
    ]
    write_result("fig7_scramjet", lines)
    benchmark.extra_info["final_elements"] = stats.final_elements
    benchmark.extra_info["in_band_fraction"] = report["in_band_fraction"]

    assert stats.final_elements > 1.5 * initial
    assert report["in_band_fraction"] > 0.85
    assert share > 0.25  # narrow bands hold a large share of all elements


def test_fig8_accelerator_tracking(benchmark):
    n = max(params()["wing_n"] // 2, 4)
    mesh = accelerator_mesh(n=n)

    def run():
        return track_particle(mesh, steps=3, refinement=3.5, max_passes=6)

    history = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["step,x,elements,refined_near_particle"]
    for k, step in enumerate(history):
        lines.append(
            f"{k + 1},{step.position[0]:.2f},{step.elements},"
            f"{step.refined_near_particle}"
        )
    lines.append("")
    lines.append("paper: Fig. 8 shows three adapted meshes tracking the "
                 "particles; refinement follows the bunch")
    write_result("fig8_accelerator", lines)

    # The refined zone follows the particle at every step.
    for k, step in enumerate(history):
        assert step.refined_near_particle > 0
        others = [
            np.linalg.norm(np.subtract(step.position, other.position))
            for other in history
            if other is not step
        ]
        assert min(others) > 0.5  # positions genuinely move
    # After the last step, the first zone has coarsened back: fewer
    # elements near it than near the current particle.
    final = history[-1]
    first_pos = history[0].position
    near_first = sum(
        1
        for f in mesh.entities(2)
        if np.linalg.norm(mesh.centroid(f)[:2] - first_pos) < 0.25
    )
    assert final.refined_near_particle > near_first
