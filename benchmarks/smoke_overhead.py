"""CI gate: a disabled tracer must not slow the superstep loop measurably.

The tracer hooks sit on the hottest paths of the simulated runtime
(``Network.exchange``, ``CommWorld.transmit``); the design contract is that
an attached-but-disabled tracer costs one attribute check per message.  This
script measures a superstep-heavy smoke workload three ways —

* ``baseline``: no tracer attached,
* ``disabled``: ``Tracer(enabled=False)`` attached,
* ``enabled``: a live tracer (reported for context, not gated)

— takes the best of ``--repeats`` runs of each (best-of damps scheduler
noise far better than means), and fails with exit code 1 when the disabled
tracer's best run is more than ``--limit`` (default 3%) slower than
baseline.

Run as ``python benchmarks/smoke_overhead.py`` from the repo root (CI does).
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import Tracer  # noqa: E402
from repro.parallel import Network, PerfCounters  # noqa: E402


def smoke_workload(tracer, nparts: int, supersteps: int) -> None:
    """A superstep loop with neighbor traffic on every step."""
    net = Network(nparts, counters=PerfCounters(), tracer=tracer)
    payload = list(range(32))
    for _step in range(supersteps):
        for src in range(nparts):
            net.post(src, (src + 1) % nparts, 1, payload)
            net.post(src, (src - 1) % nparts, 2, payload)
        net.exchange()


def _timed(tracer, nparts: int, supersteps: int) -> float:
    gc.collect()
    start = time.perf_counter()
    smoke_workload(tracer, nparts, supersteps)
    return time.perf_counter() - start


def alternating_mins(repeats: int, nparts: int, supersteps: int):
    """Best baseline and best disabled-tracer time, runs strictly alternating.

    Scheduler noise is additive — preemption and frequency dips only ever
    *add* time — so the minimum over many runs converges on the true cost
    and the min/min ratio is the most noise-immune overhead estimate
    available without perf counters.  Alternating the order every round
    cancels position bias (a fixed order showed a systematic ~3% phantom
    overhead in testing; medians of paired ratios still swung ±10% on a
    shared machine, min/min stayed within ±3%).
    """
    base = float("inf")
    dis = float("inf")
    for round_no in range(repeats):
        if round_no % 2 == 0:
            base = min(base, _timed(None, nparts, supersteps))
            dis = min(
                dis, _timed(Tracer(enabled=False), nparts, supersteps)
            )
        else:
            dis = min(
                dis, _timed(Tracer(enabled=False), nparts, supersteps)
            )
            base = min(base, _timed(None, nparts, supersteps))
    return base, dis


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--parts", type=int, default=8)
    parser.add_argument("--supersteps", type=int, default=400)
    parser.add_argument("--repeats", type=int, default=14)
    parser.add_argument(
        "--limit", type=float, default=0.03,
        help="maximum allowed disabled-tracer overhead (fraction)",
    )
    args = parser.parse_args(argv)

    # Warm up allocators / imports outside the timed region.
    smoke_workload(None, args.parts, 50)

    baseline, disabled = alternating_mins(
        args.repeats, args.parts, args.supersteps
    )
    overhead = disabled / baseline - 1.0
    enabled = _timed(Tracer(), args.parts, args.supersteps)

    print(
        f"smoke: {args.parts} parts x {args.supersteps} supersteps, "
        f"best of {args.repeats} alternating rounds"
    )
    print(f"  baseline (no tracer):  {baseline:.4f}s")
    print(
        f"  disabled tracer:       {disabled:.4f}s "
        f"({100 * overhead:+.2f}%)"
    )
    print(
        f"  enabled tracer:        {enabled:.4f}s "
        f"({100 * (enabled / baseline - 1.0):+.2f}%, informational)"
    )
    if overhead > args.limit:
        print(
            f"FAIL: disabled-tracer overhead {100 * overhead:.2f}% exceeds "
            f"the {100 * args.limit:.0f}% budget",
            file=sys.stderr,
        )
        return 1
    print(f"OK: within the {100 * args.limit:.0f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
