"""Fig. 12: per-part normalized vertex and edge counts before/after ParMA T2.

Paper reference: scatter of ``Vtx / VtxAve`` (a) and ``Edge / EdgeAve`` (b)
over the 16,384 parts before and after test T2 — before, spikes reach ~1.2x
the average; after, every part sits inside the [?, 1.05] band (spikes
clipped, valleys raised).

The benchmark regenerates both series at the current scale, writes them as
CSV for plotting, and asserts the clipping: the post-ParMA maximum of each
normalized series is below the pre-ParMA maximum and within the tolerance
band.
"""

import numpy as np

from common import fmt_pct, write_result

from repro.core import ParMA


def test_fig12_series(benchmark, aaa_case, t0_counts):
    means = t0_counts.astype(float).mean(axis=0)
    before_vtx = t0_counts[:, 0] / means[0]
    before_edge = t0_counts[:, 1] / means[1]

    dmesh = aaa_case.distribute()

    def run():
        return ParMA(dmesh).improve("Vtx = Edge > Rgn", tol=0.05)

    benchmark.pedantic(run, rounds=1, iterations=1)
    counts = dmesh.entity_counts()
    after_vtx = counts[:, 0] / means[0]
    after_edge = counts[:, 1] / means[1]

    lines = ["part,vtx_before,vtx_after,edge_before,edge_after"]
    for p in range(dmesh.nparts):
        lines.append(
            f"{p},{before_vtx[p]:.4f},{after_vtx[p]:.4f},"
            f"{before_edge[p]:.4f},{after_edge[p]:.4f}"
        )
    lines.append("")
    lines.append(
        f"max vtx: {before_vtx.max():.3f} -> {after_vtx.max():.3f}; "
        f"max edge: {before_edge.max():.3f} -> {after_edge.max():.3f}"
    )
    lines.append("paper: spikes ~1.19 clipped into the 1.05 band (Fig. 12)")
    write_result("fig12", lines)
    benchmark.extra_info["max_vtx_before"] = float(before_vtx.max())
    benchmark.extra_info["max_vtx_after"] = float(after_vtx.max())

    # Spikes clipped for both entity types.
    assert after_vtx.max() < before_vtx.max()
    assert after_edge.max() < before_edge.max()
    # Post-ParMA peaks near the tolerance band (vs its own current mean).
    assert after_vtx.max() / after_vtx.mean() <= 1.08
    assert after_edge.max() / after_edge.mean() <= 1.08
