"""Session fixtures shared by the benchmark suite.

The AAA workload (mesh + T0 hypergraph partition) is expensive, so it is
built once per session and shared; each benchmark re-distributes from the
cached assignment, which is cheap and gives every test an identical, fresh
T0 partition to start from.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import params  # noqa: E402

from repro.partitioners import partition  # noqa: E402
from repro.workloads import aaa_mesh  # noqa: E402


class AAACase:
    """The Table I/II/III workload: mesh, T0 assignment, and T0 timing."""

    def __init__(self) -> None:
        p = params()
        self.nparts = p["aaa_parts"]
        self.mesh = aaa_mesh(n=p["aaa_n"])
        start = time.perf_counter()
        self.assignment = partition(
            self.mesh, self.nparts, method="hypergraph", seed=1, eps=0.05
        )
        self.t0_seconds = time.perf_counter() - start

    def distribute(self):
        from repro.partition import distribute

        return distribute(self.mesh, self.assignment, nparts=self.nparts)


@pytest.fixture(scope="session")
def aaa_case() -> AAACase:
    return AAACase()


@pytest.fixture(scope="session")
def t0_counts(aaa_case):
    """Entity counts of the T0 partition (and its fixed means)."""
    from repro.partitioners import entity_counts_from_assignment

    counts = entity_counts_from_assignment(
        aaa_case.mesh, aaa_case.assignment, aaa_case.nparts
    )
    return counts
