"""Section III-B: heavy part splitting vs diffusion on adaptation spikes.

Paper reference: "the greedy iterative diffusive procedure ... is observed
to not meet a target imbalance tolerance when the input partition is large
and has multiple parts with the imbalance spikes neighboring each other";
heavy part splitting (knapsack merges + MIS + splits) is the directed,
aggressive alternative, "followed by iterative partition improvement" as
needed.

The benchmark builds the Fig.-13 post-adaptation partition (neighboring
spikes along the shock) and compares diffusion alone against splitting
followed by diffusion.  Shape expectations: diffusion alone leaves the peak
far above tolerance; the composed recipe lands near it.
"""

import numpy as np

from common import fmt_pct, params, write_result

from repro.adapt import adapt, ancestry_counts
from repro.core import ParMA, heavy_part_splitting, imbalance_of
from repro.partition import distribute
from repro.partitioners import partition
from repro.workloads import wing_case


def spiked_distribution(p):
    """Adapt the wing mesh with inherited parts: the Fig.-13 partition."""
    mesh, size = wing_case(n=max(p["wing_n"] - 4, 4), refinement=3.0)
    nparts = max(p["wing_parts"] // 2, 4)
    assignment = partition(mesh, nparts, method="rcb")
    tag = mesh.tag("part")
    for element, part in zip(mesh.entities(3), assignment):
        tag.set(element, int(part))
    adapt(mesh, size, max_passes=5, do_coarsen=False, ancestry_tag="part")
    inherited = {e: int(tag.get(e)) for e in mesh.entities(3)}
    return distribute(mesh, inherited, nparts=nparts)


def test_split_beats_diffusion_on_spikes(benchmark):
    p = params()

    dm_diffusion = spiked_distribution(p)
    initial = imbalance_of(dm_diffusion.entity_counts(), 3)
    diff_stats = ParMA(dm_diffusion).improve("Rgn", tol=0.05)
    diffusion_final = imbalance_of(dm_diffusion.entity_counts(), 3)
    dm_diffusion.verify()

    dm_composed = spiked_distribution(p)

    def run():
        split = heavy_part_splitting(dm_composed, tol=0.05)
        improve = ParMA(dm_composed).improve("Rgn", tol=0.05)
        return split, improve

    split_stats, improve_stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    composed_final = imbalance_of(dm_composed.entity_counts(), 3)
    dm_composed.verify()

    lines = [
        f"wing post-adaptation partition, {dm_composed.nparts} base parts, "
        f"initial peak Rgn imbalance {fmt_pct(initial)}%",
        f"diffusion only:        {fmt_pct(diffusion_final)}% "
        f"({diff_stats.total_migrated} elements, {diff_stats.seconds:.2f}s)",
        f"split + diffusion:     {fmt_pct(composed_final)}% "
        f"({split_stats.merges_executed} merges, "
        f"{split_stats.splits_executed} splits, then "
        f"{improve_stats.total_migrated} elements diffused)",
        "",
        "paper: diffusion alone cannot meet tolerance on neighboring "
        "spikes; merge+MIS+split removes them directly",
    ]
    write_result("heavy_split", lines)
    benchmark.extra_info["initial_pct"] = fmt_pct(initial)
    benchmark.extra_info["diffusion_pct"] = fmt_pct(diffusion_final)
    benchmark.extra_info["composed_pct"] = fmt_pct(composed_final)

    assert initial > 1.5  # the spikes are real
    assert split_stats.splits_executed >= 1
    # The composed recipe reaches (near) tolerance like diffusion does at
    # this scale, but far more directly: the targeted merge+split removes
    # the spikes up front, leaving the diffusive phase a fraction of the
    # element movement.  (At the paper's scale diffusion alone cannot even
    # reach tolerance; at laptop scale its cost is where the gap shows.)
    assert composed_final <= max(diffusion_final, 1.10) + 1e-9
    assert improve_stats.total_migrated < diff_stats.total_migrated
