"""Coupling-hub benchmark: cross-mesh transfer scaling + channel throughput.

Two measurements back the ``repro.couple`` subsystem:

* **transfer** — :func:`repro.couple.transfer_between` on a tri source /
  Delaunay target pair at several (src parts x dst parts) combinations,
  timed against the serial :func:`repro.field.transfer_vertex_field` on
  the same meshes.  Every distributed run is asserted bit-identical to
  the serial output before its timing is reported, so the table compares
  equal work and doubles as a standing parity gate.
* **channel** — frames/second through an in-memory ``Channel`` for a
  send/recv ping between two threads, sized like the coupled workload's
  per-step exchange.

Usage::

    PYTHONPATH=src python benchmarks/bench_couple.py [--quick]

Results land in ``benchmarks/results/couple.txt`` plus the
machine-readable ``BENCH_couple.json``.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import write_result

from repro.couple import Channel, ChannelSpec, FieldFrame, transfer_between
from repro.field import Field, transfer_vertex_field
from repro.mesh import rect_tri
from repro.mesh.generate import delaunay_rect
from repro.partition import distribute
from repro.partition.fieldsync import DistributedField
from repro.partitioners import partition

QUICK = {"src_n": 10, "dst_n": 14, "combos": [(1, 1), (2, 2)],
         "reps": 2, "frames": 200, "points": 256}
FULL = {"src_n": 18, "dst_n": 25, "combos": [(1, 1), (2, 1), (2, 2), (4, 2)],
        "reps": 3, "frames": 1000, "points": 1024}


def front(x):
    x = np.asarray(x, dtype=float)
    return float(np.sin(3 * x[0]) + np.cos(2 * x[1]) + 0.5 * x[0] * x[1])


def time_fn(fn, reps):
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def bench_transfer(params):
    src = rect_tri(params["src_n"])
    dst = delaunay_rect(params["dst_n"], seed=3)
    field = Field(src, "u", 0, 1)
    field.set_from_coords(front)
    t_serial, serial = time_fn(
        lambda: transfer_vertex_field(src, field, dst), params["reps"]
    )

    lines = [
        f"transfer: {len(dst.core.live_ids(0))} target verts  "
        f"serial={t_serial * 1e3:.2f}ms"
    ]
    table = {"serial_seconds": t_serial, "combos": {}}
    for nsrc, ndst in params["combos"]:
        src_d = distribute(src, partition(src, nsrc, method="rcb"))
        dst_d = distribute(dst, partition(dst, ndst, method="rcb"))
        sfield = DistributedField(src_d, "u", 0, 1)
        sfield.set_from_coords(front)

        t_dist, result = time_fn(
            lambda: transfer_between(src_d, sfield, dst_d), params["reps"]
        )
        dfield, stats = result
        for part in dst_d:
            ids = part.mesh.core.live_ids(0)
            gids = part.gids_of(0, ids)
            assert np.array_equal(
                dfield.on(part.pid).get_many(ids), serial.get_many(gids)
            ), f"parity failure at {nsrc}x{ndst}"

        key = f"{nsrc}x{ndst}"
        table["combos"][key] = {
            "seconds": t_dist,
            "bit_identical": True,
            **stats.to_dict(),
        }
        lines.append(
            f"transfer {key}: {t_dist * 1e3:.2f}ms  "
            f"points={stats.points}  wire_bytes={stats.wire_bytes}  "
            f"parity=bit-identical"
        )
    return lines, table


def bench_channel(params):
    nframes, npoints = params["frames"], params["points"]
    spec = ChannelSpec(name="bench", src="a", dst="b", capacity=8)
    chan = Channel(spec)
    values = np.random.default_rng(0).random((npoints, 1))

    def producer():
        for step in range(nframes):
            chan.send(
                "src",
                FieldFrame(channel="bench", kind="values", seq=step,
                           values=values),
                timeout=30.0,
            )

    t0 = time.perf_counter()
    thread = threading.Thread(target=producer)
    thread.start()
    got = 0
    for _step in range(nframes):
        frame = chan.recv("dst", timeout=30.0)
        got += frame.values.shape[0]
    thread.join()
    elapsed = time.perf_counter() - t0

    fps = nframes / elapsed
    mbps = got * values.shape[1] * 8 / elapsed / 1e6
    line = (
        f"channel: {nframes} frames x {npoints} points  "
        f"{fps:.0f} frames/s  {mbps:.1f} MB/s"
    )
    return [line], {
        "frames": nframes,
        "points_per_frame": npoints,
        "seconds": elapsed,
        "frames_per_second": fps,
        "mb_per_second": mbps,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    params = QUICK if args.quick else FULL

    t_lines, t_table = bench_transfer(params)
    c_lines, c_table = bench_channel(params)
    lines = t_lines + c_lines
    for line in lines:
        print(line)
    write_result(
        "couple", lines, extra={"transfer": t_table, "channel": c_table}
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
