"""Scaling behavior of ParMA's diffusion versus the global partitioner.

Paper context: ParMA "provides fast partitioning procedures" whose cost is
dominated by local neighborhood work, which is why it can run "on a regular
basis" inside a workflow while a global (hyper)graph partitioning cannot.
The benchmark fixes the mesh and sweeps the part count, timing both the
hypergraph baseline and a ParMA improvement of its output.  Shape
expectations: the baseline's cost grows with the part count (more recursion
levels, more refinement passes), while ParMA's cost stays a fraction of it
at every point — the economics that justify per-step rebalancing.
"""

import time

import numpy as np

from common import params, write_result

from repro.core import ParMA
from repro.partition import distribute
from repro.partitioners import partition
from repro.workloads import aaa_mesh


def test_scaling_with_part_count(benchmark):
    p = params()
    mesh = aaa_mesh(n=p["aaa_n"])
    sweep = sorted({max(p["aaa_parts"] // 4, 2), p["aaa_parts"] // 2,
                    p["aaa_parts"]})
    rows = ["parts,phg_seconds,parma_seconds,ratio"]
    results = {}

    def run():
        for parts in sweep:
            start = time.perf_counter()
            assignment = partition(
                mesh, parts, method="hypergraph", seed=1, eps=0.05
            )
            phg_seconds = time.perf_counter() - start
            dmesh = distribute(mesh, assignment, nparts=parts)
            start = time.perf_counter()
            ParMA(dmesh).improve("Vtx > Rgn", tol=0.05)
            parma_seconds = time.perf_counter() - start
            results[parts] = (phg_seconds, parma_seconds)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    for parts in sweep:
        phg_seconds, parma_seconds = results[parts]
        rows.append(
            f"{parts},{phg_seconds:.2f},{parma_seconds:.2f},"
            f"{phg_seconds / max(parma_seconds, 1e-9):.1f}"
        )
    rows.append("")
    rows.append("paper: ParMA cheap enough to rerun every workflow step; "
                "global partitioning is not")
    write_result("scaling", rows)
    benchmark.extra_info["results"] = {
        k: (round(a, 2), round(b, 2)) for k, (a, b) in results.items()
    }

    # ParMA stays cheaper than the baseline at every part count.
    for parts in sweep:
        phg_seconds, parma_seconds = results[parts]
        assert parma_seconds < phg_seconds
