"""Section II-D: hybrid two-level communication, up to 32 threads per node.

Paper reference: "This hybrid multi-threaded/MPI communication capability
has been tested using up to 32 communicating threads in a single node of a
Blue Gene/Q", with on-node part boundaries held implicitly in shared memory
and inter-node messages coalesced by leaders.

The benchmark sweeps thread counts (cores per node) on a fixed 4-node
machine running an all-to-all neighbor exchange, comparing flat MPI-style
messaging against the two-level scheme.  Shape expectations: the hybrid
scheme's off-node message count is bounded by node-pair counts (so its
advantage grows with threads per node), and per-exchange traffic is
independent of the payload pattern's on-node fraction.
"""

import pytest

from common import params, write_result

from repro.parallel import (
    MachineTopology,
    PerfCounters,
    TwoLevelComm,
    neighbor_exchange,
    spmd,
)

NODES = 4
ROUNDS = 3


def _flat(comm):
    for _ in range(ROUNDS):
        outgoing = {
            dst: [comm.rank] for dst in range(comm.size) if dst != comm.rank
        }
        neighbor_exchange(comm, outgoing)


def _hybrid(comm):
    hybrid = TwoLevelComm(comm)
    for _ in range(ROUNDS):
        outgoing = {
            dst: [comm.rank] for dst in range(comm.size) if dst != comm.rank
        }
        hybrid.exchange(outgoing)


def _measure(program, topo):
    perf = PerfCounters()
    spmd(topo.total_cores, program, topology=topo, counters=perf,
         timeout=120.0)
    return (
        perf.get("comm.messages.on_node"),
        perf.get("comm.messages.off_node"),
        perf.get("comm.bytes.off_node"),
    )


def test_hybrid_sweep(benchmark):
    max_cores = params()["hybrid_cores"]
    sweep = [c for c in (1, 2, 4, 8, 16, 32) if c <= max_cores]
    rows = ["cores_per_node,flat_off_msgs,hybrid_off_msgs,ratio"]
    results = {}

    def run():
        for cores in sweep:
            topo = MachineTopology(nodes=NODES, cores_per_node=cores)
            _on_f, off_flat, _b = _measure(_flat, topo)
            _on_h, off_hybrid, _b2 = _measure(_hybrid, topo)
            results[cores] = (off_flat, off_hybrid)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    ratios = {}
    for cores in sweep:
        off_flat, off_hybrid = results[cores]
        ratio = off_flat / max(off_hybrid, 1)
        ratios[cores] = ratio
        rows.append(f"{cores},{off_flat},{off_hybrid},{ratio:.2f}")
    rows.append("")
    rows.append("paper: tested to 32 communicating threads per BG/Q node; "
                "off-node traffic coalesced through node leaders")
    write_result("hybrid", rows)
    benchmark.extra_info["ratios"] = {k: round(v, 2) for k, v in ratios.items()}

    # The two-level scheme wins at every multi-core point, and its advantage
    # grows with threads per node.
    multi = [c for c in sweep if c > 1]
    for cores in multi:
        assert ratios[cores] > 1.0, f"hybrid lost at {cores} cores/node"
    assert ratios[multi[-1]] > ratios[multi[0]]
