"""A/B microbenchmark: vectorized vs per-vertex solution transfer.

Times :func:`repro.field.transfer_vertex_field` (batch point location and
interpolation over the core's SoA coordinate/connectivity arrays) against
the frozen per-vertex reference :func:`transfer_vertex_field_loop` on the
same source/target mesh pair, for both 2-D (tri) and 3-D (tet) meshes.
Results are asserted numerically equivalent (max |diff| <= 1e-12 on a
unit-scale field) before any timing is reported, so the speedup compares
equal work.

Usage::

    PYTHONPATH=src python benchmarks/bench_transfer.py [--quick]

Results land in ``benchmarks/results/transfer.txt`` plus the
machine-readable ``BENCH_transfer.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import write_result

from repro.field import Field, transfer_vertex_field, transfer_vertex_field_loop
from repro.mesh import box_tet, rect_tri

QUICK = {"tri": (12, 17), "tet": (5, 7), "reps": 2}
FULL = {"tri": (28, 41), "tet": (9, 13), "reps": 3}


def solution(x):
    return np.sin(3.0 * x[0]) + np.cos(2.0 * x[1]) + 0.5 * x[2]


def build_pair(kind, src_n, dst_n):
    if kind == "tri":
        return rect_tri(src_n), rect_tri(dst_n)
    return box_tet(src_n, src_n, src_n), box_tet(dst_n, dst_n, dst_n)


def time_fn(fn, reps):
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def run(params):
    lines = []
    table = {}
    for kind in ("tri", "tet"):
        src_n, dst_n = params[kind]
        src, dst = build_pair(kind, src_n, dst_n)
        field = Field(src, "u", 0, 1)
        field.set_from_coords(solution)
        nverts = len(dst.core.live_ids(0))

        t_loop, f_loop = time_fn(
            lambda: transfer_vertex_field_loop(src, field, dst), params["reps"]
        )
        t_batch, f_batch = time_fn(
            lambda: transfer_vertex_field(src, field, dst), params["reps"]
        )

        ids = dst.core.live_ids(0)
        diff = float(
            np.abs(f_loop.get_many(ids) - f_batch.get_many(ids)).max()
        )
        assert diff <= 1e-12, f"{kind}: A/B mismatch {diff}"

        speedup = t_loop / t_batch if t_batch > 0 else float("inf")
        table[kind] = {
            "target_vertices": nverts,
            "loop_seconds": t_loop,
            "batch_seconds": t_batch,
            "speedup": speedup,
            "max_abs_diff": diff,
        }
        lines.append(
            f"{kind}: {nverts} target verts  "
            f"loop={t_loop * 1e3:.2f}ms  batch={t_batch * 1e3:.2f}ms  "
            f"speedup={speedup:.1f}x  maxdiff={diff:.2e}"
        )
    return lines, table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    params = QUICK if args.quick else FULL
    lines, table = run(params)
    for line in lines:
        print(line)
    write_result("transfer", lines, extra={"transfer": table})
    return 0


if __name__ == "__main__":
    sys.exit(main())
