"""Snapshot I/O: full vs differential epochs, cold vs warm svc starts.

Three measurements:

* **full vs differential save** — after a small migration plus a sparse
  field update, the delta epoch must persist well under a quarter of the
  full epoch's payload bytes (the incremental-I/O gate).
* **repartition-on-load** — one snapshot written at 4 parts is loaded at
  1, 2 and 8; owned element-gid sets and field checksums must agree at
  every width.
* **svc warm start** — a ``mesh-warm`` job run cold (geometry generated,
  snapshot published) and then warm (snapshot loaded from the cache);
  the warm path must actually hit the cache and skip generation.

Usage:
    PYTHONPATH=src python benchmarks/bench_snapshot_io.py [--quick]
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from common import write_result

from repro.mesh import rect_tri
from repro.parallel import GLOBAL, MachineTopology
from repro.partition import DistributedField, distribute, migrate
from repro.partitioners import partition
from repro.store import (
    SnapshotCache,
    SnapshotStore,
    field_checksum,
    owned_gid_set,
)
from repro.svc import JobSpec, MeshJobService

FULL = {"n": 24, "chunk_records": 256, "warm_n": 20}
QUICK = {"n": 10, "chunk_records": 64, "warm_n": 8}


def build(n, nparts=4):
    mesh = rect_tri(n)
    dm = distribute(mesh, partition(mesh, nparts, method="rcb", seed=0))
    f = DistributedField(dm, "u", 0, 1)
    for part in dm:
        local = f.on(part.pid)
        for v in part.mesh.entities(0):
            if not part.is_ghost(v):
                local.set(v, np.array([float(part.gid(v))]))
    return mesh, dm, f


def dirty_some(dm, f, count=8):
    """A small migration plus a sparse field update — the delta source."""
    part0 = dm.part(0)
    elems = list(part0.mesh.entities(2))[:2]
    migrate(dm, {0: {e: 1 for e in elems}})
    part = dm.part(1)
    local = f.on(1)
    touched = 0
    for v in part.mesh.entities(0):
        if part.owns(v) and not part.is_ghost(v):
            local.set(v, np.array([-1.0 * part.gid(v)]))
            touched += 1
            if touched >= count:
                break
    return touched


def bench_epochs(root, p, failures):
    mesh, dm, f = build(p["n"])
    store = SnapshotStore(root, chunk_records=p["chunk_records"])
    t0 = time.perf_counter()
    full = store.save(dm, [f])
    full_s = time.perf_counter() - t0
    touched = dirty_some(dm, f)
    t0 = time.perf_counter()
    delta = store.save(dm, [f])
    delta_s = time.perf_counter() - t0
    ratio = delta.payload_bytes / full.payload_bytes
    if not (delta.kind == "delta" and ratio < 0.25):
        failures.append(
            f"FAIL delta epoch {delta.payload_bytes}B is "
            f"{100 * ratio:.1f}% of full {full.payload_bytes}B (gate 25%)"
        )
    want = (owned_gid_set(dm, 2), round(field_checksum(dm, f), 9))
    widths = {}
    for target in (1, 2, 8):
        t0 = time.perf_counter()
        dm2, fields, stats = store.load_at(nparts=target, model=mesh.model)
        load_s = time.perf_counter() - t0
        got = (owned_gid_set(dm2, 2), round(field_checksum(dm2, fields["u"]), 9))
        if got != want:
            failures.append(f"FAIL load parity broken at nparts={target}")
        widths[target] = {
            "seconds": load_s,
            "records": stats.records,
            "wire_bytes": stats.wire_bytes,
            "supersteps": stats.supersteps,
        }
    return {
        "elements": len(want[0]),
        "full_bytes": full.payload_bytes,
        "full_chunks": full.chunks,
        "full_seconds": full_s,
        "delta_bytes": delta.payload_bytes,
        "delta_records": delta.records,
        "delta_seconds": delta_s,
        "delta_ratio": ratio,
        "dirtied": touched,
        "loads": widths,
    }


def bench_warm_start(root, p, failures):
    svc = MeshJobService(
        MachineTopology(nodes=2, cores_per_node=4),
        timeout=60.0,
        snapshot_cache=SnapshotCache(root),
    )
    timings = {}
    for phase, name in (("cold", "io-cold"), ("warm", "io-warm")):
        spec = JobSpec(
            name=name, workload="mesh-warm", parts=4,
            mesh_n=p["warm_n"], tenant="bench",
        )
        t0 = time.perf_counter()
        svc.submit(spec)
        svc.run_until_idle()
        timings[phase] = time.perf_counter() - t0
    outputs = {
        job["name"]: job["output"]
        for job in svc.report().to_dict()["jobs"]
    }
    hits = svc.counters.get("store.cache.hits")
    if outputs["io-cold"]["warm"] or not outputs["io-warm"]["warm"]:
        failures.append(
            "FAIL warm-start flags wrong: "
            f"cold={outputs['io-cold']['warm']} "
            f"warm={outputs['io-warm']['warm']}"
        )
    if hits < 1:
        failures.append(f"FAIL store.cache.hits = {hits}, expected >= 1")
    from repro.store import uninstall_cache

    uninstall_cache()
    return {
        "cold_seconds": timings["cold"],
        "warm_seconds": timings["warm"],
        "speedup": timings["cold"] / max(timings["warm"], 1e-9),
        "cache_hits": hits,
        "cache_misses": svc.counters.get("store.cache.misses"),
        "elements": outputs["io-warm"]["elements"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for the CI smoke"
    )
    args = parser.parse_args(argv)
    p = QUICK if args.quick else FULL

    failures = []
    with tempfile.TemporaryDirectory() as td:
        epochs = bench_epochs(Path(td) / "store", p, failures)
        warm = bench_warm_start(Path(td) / "cache", p, failures)

    lines = [
        f"snapshot io: rect_tri(n={p['n']}) at 4 parts, "
        f"chunk_records={p['chunk_records']}",
        f"full epoch:  {epochs['full_bytes']:>9} B in "
        f"{epochs['full_chunks']} chunks ({epochs['full_seconds']:.3f}s)",
        f"delta epoch: {epochs['delta_bytes']:>9} B, "
        f"{epochs['delta_records']} records after migration + "
        f"{epochs['dirtied']} dirty values "
        f"= {100 * epochs['delta_ratio']:.2f}% of full (gate < 25%)",
        f"{'load':>6} {'seconds':>9} {'records':>8} {'wire B':>9} "
        f"{'steps':>6}",
    ]
    for target, load in sorted(epochs["loads"].items()):
        lines.append(
            f"{target:>6} {load['seconds']:>9.3f} {load['records']:>8} "
            f"{load['wire_bytes']:>9} {load['supersteps']:>6}"
        )
    lines.append(
        f"svc mesh-warm (n={p['warm_n']}, 4 parts): "
        f"cold {warm['cold_seconds']:.3f}s -> warm "
        f"{warm['warm_seconds']:.3f}s ({warm['speedup']:.2f}x), "
        f"cache hits={warm['cache_hits']} misses={warm['cache_misses']}"
    )
    lines.extend(failures)

    path = write_result(
        "snapshot_io", lines,
        extra={"epochs": epochs, "warm_start": warm,
               "failures": failures},
    )
    print("\n".join(lines))
    print(f"wrote {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
