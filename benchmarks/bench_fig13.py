"""Fig. 13: element-imbalance histogram after adaptation w/o load balancing.

Paper reference: a 1024-part ONERA M6 mesh adapted from 46M to 160M elements
with a shock-front size field and *no* prior load balancing shows a peak
imbalance over 400%, ~80 parts above 20% imbalance, and over 120 parts
holding fewer than 50% of the average element count.

The benchmark partitions the wing flow box, stamps every element with its
part, adapts to the oblique shock band (elements inherit the ancestor's
part), and histograms the per-part descendant counts.  Shape expectations:
a long right tail (peak imbalance far above any diffusion tolerance) and a
large population of starved parts.
"""

import numpy as np

from common import params, write_result

from repro.adapt import adapt, ancestry_counts
from repro.partitioners import partition
from repro.workloads import wing_case


def test_fig13_histogram(benchmark):
    p = params()
    mesh, size = wing_case(n=p["wing_n"], refinement=4.0)
    nparts = p["wing_parts"]
    assignment = partition(mesh, nparts, method="rcb")
    tag = mesh.tag("part")
    for element, part in zip(mesh.entities(3), assignment):
        tag.set(element, int(part))

    def run():
        return adapt(
            mesh, size, max_passes=6, do_coarsen=False, ancestry_tag="part"
        )

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    counts = ancestry_counts(mesh, "part")
    loads = np.array([counts.get(q, 0) for q in range(nparts)], dtype=float)
    mean = loads.mean()
    ratios = loads / mean

    edges = np.linspace(0.0, max(ratios.max() * 1.01, 2.0), 12)
    hist, _ = np.histogram(ratios, bins=edges)
    lines = [
        f"wing flow box, {stats.initial_elements} -> {stats.final_elements} "
        f"tets, {nparts} parts, ancestry-inherited partition",
        "imbalance_ratio_bin,frequency",
    ]
    for i, n in enumerate(hist):
        lines.append(f"{edges[i]:.2f}-{edges[i + 1]:.2f},{n}")
    peak = ratios.max()
    starved = int((ratios < 0.5).sum())
    over20 = int((ratios > 1.2).sum())
    lines.append("")
    lines.append(
        f"peak imbalance {100 * (peak - 1):.0f}%, {over20} parts over 20%, "
        f"{starved} parts under 50% of average"
    )
    lines.append(
        "paper: peak >400%, ~80 of 1024 parts over 20%, >120 parts under 50%"
    )
    write_result("fig13", lines)
    benchmark.extra_info["peak_pct"] = round(100 * (peak - 1), 1)
    benchmark.extra_info["parts_over_20pct"] = over20
    benchmark.extra_info["parts_under_half"] = starved

    # Shape assertions: the adaptation grew the mesh substantially, the
    # shock-crossed parts spike far beyond any diffusion tolerance, and a
    # sizable population of parts starves.
    assert stats.final_elements > 1.5 * stats.initial_elements
    assert peak > 1.5
    assert starved >= nparts // 12
    assert over20 >= nparts // 12
