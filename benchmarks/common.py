"""Shared utilities for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Scale is
controlled by ``REPRO_BENCH_SCALE`` (``small`` default, ``medium``,
``large``); the paper's absolute sizes (133M elements, 16K parts, Blue
Gene/Q) are far beyond a laptop Python run, so each scale keeps the paper's
*ratios* (elements per part, tolerance, priority lists) while shrinking the
totals.  Results are written to ``benchmarks/results/`` so the EXPERIMENTS
log can quote them.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, List, Optional

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Per-scale parameters: AAA mesh resolution, part count, wing resolution,
#: wing part count, hybrid thread sweep maximum.
SCALES: Dict[str, Dict[str, int]] = {
    "small": {"aaa_n": 6, "aaa_parts": 16, "wing_n": 10, "wing_parts": 24,
              "hybrid_cores": 16, "local_factor": 8},
    "medium": {"aaa_n": 10, "aaa_parts": 32, "wing_n": 14, "wing_parts": 48,
               "hybrid_cores": 32, "local_factor": 6},
    "large": {"aaa_n": 14, "aaa_parts": 64, "wing_n": 18, "wing_parts": 96,
              "hybrid_cores": 32, "local_factor": 8},
}


def scale_name() -> str:
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name not in SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {name!r}"
        )
    return name


def params() -> Dict[str, int]:
    return dict(SCALES[scale_name()])


def write_result(
    name: str,
    lines: List[str],
    tracer=None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write one experiment's output block to results/<name>.txt.

    Alongside the text block a machine-readable ``BENCH_<name>.json``
    (the :func:`repro.obs.metrics_dict` schema) is emitted with the global
    counter snapshot, the optional tracer's communication matrix, and the
    text lines — the structured form the EXPERIMENTS log and CI artifacts
    consume.
    """
    from repro.obs import write_metrics
    from repro.parallel import GLOBAL

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    header = f"# scale={scale_name()}\n"
    path.write_text(header + "\n".join(lines) + "\n")
    payload: Dict[str, Any] = {
        "benchmark": name,
        "scale": scale_name(),
        "lines": list(lines),
    }
    if extra:
        payload.update(extra)
    write_metrics(
        RESULTS_DIR / f"BENCH_{name}.json",
        tracer=tracer,
        counters=GLOBAL,
        extra=payload,
    )
    return path


def fmt_pct(ratio: float) -> str:
    """Format a max/mean ratio as the paper's Imb.% convention."""
    return f"{100.0 * (ratio - 1.0):.2f}"
