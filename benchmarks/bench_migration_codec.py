"""A/B benchmark: binary wire codec vs pickle on the migration pipeline.

Runs the same workload — ring migration rounds, one ghost layer, field
synchronize + accumulate — twice on identical meshes, once with
``codec="binary"`` (coalesced struct-packed element batches) and once with
``codec="pickle"`` (the legacy per-record path), and compares:

* off-node wire bytes charged by the simulated network (the paper's
  neighborhood-traffic metric), and
* wall-clock time of the migration phase.

Usage::

    PYTHONPATH=src python benchmarks/bench_migration_codec.py [--quick]

``--quick`` shrinks the mesh for the CI perf gate.  Results land in
``benchmarks/results/migration_codec.txt`` and the machine-readable
``BENCH_migration_codec.json`` (consumed by the CI gate, which fails the
build if binary wire bytes exceed 0.5x the pickle baseline).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import write_result

from repro.mesh import box_tet, rect_tri
from repro.parallel import PerfCounters
from repro.partition import (
    DistributedField,
    accumulate,
    delete_ghosts,
    distribute,
    ghost_layer,
    migrate,
    synchronize,
)

QUICK = {"mesh": "rect_tri", "n": 8, "parts": 4, "rounds": 2, "batch": 4}
FULL = {"mesh": "box_tet", "n": 4, "parts": 8, "rounds": 3, "batch": 64}


def strip(mesh, nparts, axis=0):
    return [
        min(int(mesh.centroid(e)[axis] * nparts), nparts - 1)
        for e in mesh.entities(mesh.dim())
    ]


def build(p):
    if p["mesh"] == "rect_tri":
        return rect_tri(p["n"])
    return box_tet(p["n"])


def run_codec(codec: str, p: dict) -> dict:
    mesh = build(p)
    # Default flat topology: every part on its own node, so all neighbor
    # traffic is off-node and charged wire bytes.  A fresh counter registry
    # per run keeps the A/B byte readings independent (the default GLOBAL
    # registry accumulates across runs in one process).
    counters = PerfCounters()
    dm = distribute(mesh, strip(mesh, p["parts"]), codec=codec,
                    counters=counters)
    edim = dm.element_dim()
    distribute_bytes = dm.counters.get("net.bytes.off_node")

    migrate_seconds = 0.0
    elements_moved = 0
    for _ in range(p["rounds"]):
        plan = {}
        for part in dm:
            chosen = sorted(part.mesh.entities(edim))[: p["batch"]]
            plan[part.pid] = {e: (part.pid + 1) % dm.nparts for e in chosen}
        start = time.perf_counter()
        mstats = migrate(dm, plan)
        migrate_seconds += time.perf_counter() - start
        elements_moved += mstats.elements_moved
    migrate_bytes = dm.counters.get("net.bytes.off_node") - distribute_bytes

    gstats = ghost_layer(dm)
    field = DistributedField(dm, "u")
    field.set_from_coords(lambda x: x[0] + 2.0 * x[1])
    sstats = synchronize(field)
    astats = accumulate(field)
    delete_ghosts(dm)
    dm.verify()

    total_bytes = dm.counters.get("net.bytes.off_node") - distribute_bytes
    return {
        "codec": codec,
        "distribute_wire_bytes": int(distribute_bytes),
        "elements_moved": elements_moved,
        "migrate_seconds": migrate_seconds,
        "migrate_wire_bytes": int(migrate_bytes),
        "total_wire_bytes": int(total_bytes),
        "ghost_wire_bytes": int(gstats.wire_bytes),
        "sync_wire_bytes": int(sstats.wire_bytes + astats.wire_bytes),
        "messages": int(dm.counters.get("net.messages.off_node")),
        "encoded_bytes": int(dm.counters.get("net.bytes.encoded")),
        "messages_coalesced": int(dm.counters.get("net.messages.coalesced")),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small mesh for the CI perf gate",
    )
    args = parser.parse_args(argv)
    p = QUICK if args.quick else FULL

    # Wire bytes are deterministic per codec; wall clock is not, so the
    # full run interleaves the codecs (machine-load drift hits both) and
    # reports best-of-5 each (the CI gate only checks bytes).
    reps = 1 if args.quick else 5
    bin_runs = []
    pik_runs = []
    for _ in range(reps):
        bin_runs.append(run_codec("binary", p))
        pik_runs.append(run_codec("pickle", p))
    binary = min(bin_runs, key=lambda r: r["migrate_seconds"])
    legacy = min(pik_runs, key=lambda r: r["migrate_seconds"])
    assert binary["elements_moved"] == legacy["elements_moved"]

    byte_ratio = legacy["total_wire_bytes"] / max(binary["total_wire_bytes"], 1)
    migrate_ratio = (
        legacy["migrate_wire_bytes"] / max(binary["migrate_wire_bytes"], 1)
    )
    speedup = legacy["migrate_seconds"] / max(binary["migrate_seconds"], 1e-9)

    rows = ["codec,migrate_seconds,migrate_wire_bytes,total_wire_bytes,messages"]
    for r in (binary, legacy):
        rows.append(
            f"{r['codec']},{r['migrate_seconds']:.4f},"
            f"{r['migrate_wire_bytes']},{r['total_wire_bytes']},{r['messages']}"
        )
    rows.append("")
    rows.append(f"wire-byte reduction (total): {byte_ratio:.2f}x")
    rows.append(f"wire-byte reduction (migration): {migrate_ratio:.2f}x")
    rows.append(f"migration wall-clock speedup: {speedup:.2f}x")

    write_result(
        "migration_codec",
        rows,
        extra={
            "params": p,
            "binary": binary,
            "pickle": legacy,
            "byte_ratio": byte_ratio,
            "migrate_byte_ratio": migrate_ratio,
            "migrate_speedup": speedup,
        },
    )
    print("\n".join(rows))

    # Acceptance: the codec must at least halve the off-node wire bytes.
    if binary["total_wire_bytes"] > 0.5 * legacy["total_wire_bytes"]:
        print(
            f"FAIL: binary wire bytes {binary['total_wire_bytes']} exceed "
            f"0.5x pickle baseline {legacy['total_wire_bytes']}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
