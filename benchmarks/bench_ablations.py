"""Ablations of ParMA's design choices (Section III-A).

Three ablations isolate the ingredients the paper motivates:

* **candidate categories** — absolute-only vs relative-only vs both.  The
  paper introduces the relative category because "these categories of
  candidate parts improve the ability of the imbalance spikes to be
  diffused throughout the partition": with both, diffusion converges at
  least as far as with either alone.
* **selection rule** — the Fig. 9/10 boundary-shape-aware rules vs a naive
  rule that ships arbitrary boundary elements.  The paper's rules exist to
  keep part boundaries from roughening; the ablation measures boundary
  entity growth under each.
* **priority ordering** — balancing the high-priority type first (Vtx >
  Rgn) vs last (Rgn > Vtx).  The priority machinery exists because a later
  stage must not undo an earlier one; with Vtx first and protected, the
  final vertex imbalance is no worse than when vertices are balanced first
  but left unprotected.
"""

import numpy as np

from common import fmt_pct, write_result

from repro.core import ParMA, imbalance_of
from repro.core.selection import select_for_dimension


def _naive_selection(part, candidate, dim, quota, already):
    """Ablated rule: grab any elements touching the candidate boundary."""
    mesh = part.mesh
    mesh_dim = mesh.dim()
    picks = []
    for ent in sorted(part.remotes):
        if len(picks) >= quota:
            break
        if candidate not in part.remotes[ent]:
            continue
        for element in mesh.adjacent(ent, mesh_dim):
            if element in already or part.is_ghost(element):
                continue
            picks.append(element)
            already.add(element)
            if len(picks) >= quota:
                break
    return picks


def _spiked_distribution():
    """One region spike whose neighbors all sit at the mean.

    The global mean (dragged down by two empty parts) equals the neighbors'
    loads, so no neighbor is *absolutely* light — the exact situation the
    relative category exists for.
    """
    from repro.mesh import box_tet
    from repro.partition import distribute
    from repro.partitioners import partition

    mesh = box_tet(6)
    assignment = partition(mesh, 8, method="rcb")
    assignment = np.where(assignment <= 2, 0, assignment)
    return distribute(mesh, assignment, nparts=8)


def test_ablation_candidate_modes(benchmark):
    results = {}

    def run():
        for mode in ("absolute", "relative", "both"):
            dmesh = _spiked_distribution()
            stats = ParMA(dmesh).improve(
                "Rgn", tol=0.05, candidate_mode=mode, max_iterations=40
            )
            results[mode] = (
                imbalance_of(dmesh.entity_counts(), 3),
                stats.total_migrated,
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["mode,final_rgn_imb_pct,elements_migrated"]
    for mode, (imb, migrated) in results.items():
        lines.append(f"{mode},{fmt_pct(imb)},{migrated}")
    lines.append("")
    lines.append("paper: the relative category lets spikes diffuse through "
                 "at-mean neighborhoods where no absolutely light part exists")
    write_result("ablation_candidates", lines)

    # Absolute-only stalls (no neighbor is below the mean); the relative
    # category unlocks diffusion, and "both" does at least as well.
    assert results["absolute"][1] == 0
    assert results["relative"][0] < results["absolute"][0] - 0.25
    assert results["both"][0] <= results["relative"][0] + 1e-9


def test_ablation_selection_rule(benchmark, aaa_case):
    results = {}

    def run():
        for name, rule in (
            ("parma", select_for_dimension),
            ("naive", _naive_selection),
        ):
            dmesh = aaa_case.distribute()
            before_boundary = dmesh.shared_entity_count()
            stats = ParMA(dmesh).improve(
                "Vtx > Rgn", tol=0.05, selection_rule=rule
            )
            results[name] = (
                imbalance_of(dmesh.entity_counts(), 0),
                dmesh.shared_entity_count() - before_boundary,
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["rule,final_vtx_imb_pct,boundary_entity_growth"]
    for name, (imb, growth) in results.items():
        lines.append(f"{name},{fmt_pct(imb)},{growth}")
    lines.append("")
    lines.append("paper: adjacency-aware selection keeps part boundaries "
                 "from roughening (Figs. 9-10)")
    write_result("ablation_selection", lines)

    parma_imb, parma_growth = results["parma"]
    naive_imb, naive_growth = results["naive"]
    # The paper's rule must not roughen boundaries more than naive grabbing
    # while converging comparably.
    assert parma_growth <= naive_growth
    assert parma_imb <= max(naive_imb + 0.02, 1.07)


def test_ablation_priority_order(benchmark, aaa_case):
    tol = 0.05
    results = {}

    def run():
        for order, protect in (("Vtx > Rgn", False), ("Rgn > Vtx", False),
                               ("Vtx (unprotected Rgn)", True)):
            dmesh = aaa_case.distribute()
            if protect:
                # Ablated: balance Vtx, then Rgn WITHOUT listing Vtx — the
                # later stage has no higher-priority protection at all.
                ParMA(dmesh).improve("Vtx", tol=tol)
                ParMA(dmesh).improve("Rgn", tol=tol)
            else:
                ParMA(dmesh).improve(order, tol=tol)
            counts = dmesh.entity_counts()
            results[order] = (
                imbalance_of(counts, 0),
                imbalance_of(counts, 3),
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["priorities,final_vtx_pct,final_rgn_pct"]
    for order, (vtx, rgn) in results.items():
        lines.append(f"{order},{fmt_pct(vtx)},{fmt_pct(rgn)}")
    lines.append("")
    lines.append("paper: the priority list protects the type balanced "
                 "first from later stages")
    write_result("ablation_priority", lines)

    # The design claim: each ordering holds its FIRST-listed type at (or
    # near) the tolerance through the later stages.
    slack = 0.03
    assert results["Vtx > Rgn"][0] <= 1.0 + tol + slack
    assert results["Rgn > Vtx"][1] <= 1.0 + tol + slack
    # The unprotected arm is recorded for comparison; its vertex balance is
    # at the mercy of the Rgn stage (equal to the protected run when that
    # stage is benign, far worse when it is not — see the small-scale
    # Rgn > Vtx row).  Sanity bound only: it cannot beat tolerance physics.
    assert results["Vtx (unprotected Rgn)"][0] >= 1.0
