"""Service throughput: jobs/sec and tail latency vs machine concurrency.

Pushes the same mixed job list through :class:`repro.svc.MeshJobService`
on machines of 1, 4, and 8 processing units — i.e. 1, up-to-4, and
up-to-8 jobs genuinely running concurrently per scheduling round — and
reports:

* sustained throughput (jobs completed / service wall seconds), and
* per-job latency p50/p95 (:meth:`MeshJobService.latency_stats`).

The service report itself stays byte-deterministic at every concurrency
(that is CI-enforced elsewhere); throughput and latency are the wall-time
observables and live here instead.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--quick]

Results land in ``benchmarks/results/service_throughput.txt`` and the
machine-readable ``BENCH_service_throughput.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import write_result

from repro.parallel import MachineTopology
from repro.svc import JobSpec, MeshJobService

#: (nodes, cores_per_node) per measured concurrency level.
MACHINES = {1: (1, 1), 4: (1, 4), 8: (2, 4)}

QUICK = {"jobs": 8, "mesh_n": 8, "steps": 2}
FULL = {"jobs": 24, "mesh_n": 24, "steps": 4}


def job_list(p):
    """A mixed single-core job stream: stencil sweeps + allreduce rounds."""
    specs = []
    for i in range(p["jobs"]):
        workload = "stencil" if i % 3 else "allreduce"
        specs.append(
            JobSpec(
                name=f"job-{i:03d}",
                workload=workload,
                parts=1,
                mesh_n=p["mesh_n"],
                steps=p["steps"],
                tenant=f"tenant-{i % 4}",
                priority=i % 5,
            )
        )
    return specs


def run_level(concurrency, p):
    nodes, cores = MACHINES[concurrency]
    service = MeshJobService(
        MachineTopology(nodes=nodes, cores_per_node=cores), seed=0
    )
    start = time.perf_counter()
    report = service.serve(job_list(p))
    wall = time.perf_counter() - start
    assert report.totals["completed"] == p["jobs"], report.summary()
    stats = service.latency_stats()
    return {
        "concurrency": concurrency,
        "machine": f"{nodes}x{cores}",
        "jobs": p["jobs"],
        "rounds": report.totals["rounds"],
        "wall_seconds": wall,
        "jobs_per_second": p["jobs"] / wall if wall else float("inf"),
        "latency_p50": stats.p50,
        "latency_p95": stats.p95,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for the CI smoke"
    )
    args = parser.parse_args(argv)
    p = QUICK if args.quick else FULL

    levels = [run_level(c, p) for c in sorted(MACHINES)]

    lines = [
        f"service throughput: {p['jobs']} single-core jobs "
        f"(stencil/allreduce mix, mesh_n={p['mesh_n']}, steps={p['steps']})",
        f"{'conc':>4} {'machine':>8} {'rounds':>6} {'jobs/s':>10} "
        f"{'p50 ms':>8} {'p95 ms':>8}",
    ]
    for level in levels:
        lines.append(
            f"{level['concurrency']:>4} {level['machine']:>8} "
            f"{level['rounds']:>6} {level['jobs_per_second']:>10.1f} "
            f"{level['latency_p50'] * 1e3:>8.2f} "
            f"{level['latency_p95'] * 1e3:>8.2f}"
        )
    speedup = levels[-1]["jobs_per_second"] / levels[0]["jobs_per_second"]
    lines.append(f"throughput at 8 cores = {speedup:.2f}x the 1-core level")

    path = write_result(
        "service_throughput", lines, extra={"levels": levels}
    )
    print("\n".join(lines))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
