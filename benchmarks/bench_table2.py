"""Tables I & II: ParMA multi-criteria partition improvement on the AAA mesh.

Paper reference (133M-tet AAA mesh, 16,384 parts, tolerance 5%, imbalances
normalized by the T0 means):

    Test  Method                   Rgn%   Face%  Edge%  Vtx%
    T0    Zoltan Hypergraph        4.30   5.39   9.07   19.41
    T1    ParMA Vtx > Rgn          4.99   -      -      4.99
    T2    ParMA Vtx = Edge > Rgn   5.99   -      4.91   4.99
    T3    ParMA Edge > Rgn         5.98   -      4.99   -
    T4    ParMA Edge = Face > Rgn  5.93   4.97   4.99   -

Shape expectations reproduced here: the baseline balances regions tightly
but leaves a vertex imbalance several times larger; every ParMA test drives
its targeted entity types down toward the 5% tolerance with only a modest
region-imbalance increase; total part-boundary entities do not blow up.
"""

import numpy as np
import pytest

from common import fmt_pct, params, write_result

from repro.core import ParMA, imbalances

#: Table I: the test matrix.
TABLE1 = [
    ("T1", "Vtx > Rgn", (0, 3)),
    ("T2", "Vtx = Edge > Rgn", (0, 1, 3)),
    ("T3", "Edge > Rgn", (1, 3)),
    ("T4", "Edge = Face > Rgn", (1, 2, 3)),
]

TOL = 0.05
_rows = {}


def _row(label, counts, means, seconds):
    imb = imbalances(counts, means)
    return (
        f"{label:<26} Rgn {fmt_pct(imb[3]):>6}%  Face {fmt_pct(imb[2]):>6}%  "
        f"Edge {fmt_pct(imb[1]):>6}%  Vtx {fmt_pct(imb[0]):>6}%  "
        f"[{seconds:.2f}s]"
    )


def test_t0_baseline_signature(benchmark, aaa_case, t0_counts):
    """T0: hypergraph baseline — regions tight, vertices the worst."""
    means = t0_counts.astype(float).mean(axis=0)
    imb = imbalances(t0_counts, means)
    _rows["T0"] = _row(
        "T0 Zoltan-style hypergraph", t0_counts, means, aaa_case.t0_seconds
    )
    benchmark.extra_info["imbalances_pct"] = [fmt_pct(v) for v in imb]
    # Region balance within the partitioner's 5% epsilon (plus FM slack).
    assert imb[3] <= 1.10
    # The baseline's untargeted vertex imbalance exceeds the region one —
    # the spike ParMA exists to remove.
    assert imb[0] > imb[3]
    # Time one re-distribution as the benchmark body (cheap, repeatable).
    benchmark.pedantic(aaa_case.distribute, rounds=1, iterations=1)


@pytest.mark.parametrize("label,priorities,targets", TABLE1)
def test_parma_improvement(benchmark, aaa_case, t0_counts, label, priorities,
                           targets):
    means = t0_counts.astype(float).mean(axis=0)
    dmesh = aaa_case.distribute()
    balancer = ParMA(dmesh)

    def run():
        return balancer.improve(priorities, tol=TOL)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    counts = dmesh.entity_counts()
    imb = imbalances(counts, means)
    _rows[label] = _row(f"{label} ParMA {priorities}", counts, means,
                        stats.seconds)
    benchmark.extra_info["imbalances_pct"] = [fmt_pct(v) for v in imb]
    benchmark.extra_info["elements_migrated"] = stats.total_migrated
    dmesh.verify()

    initial = imbalances(t0_counts, means)
    for dim in targets:
        # Each targeted type improves (or was already within tolerance),
        # measured with the current counts against current means the way
        # the driver's convergence check does.
        current = imbalances(counts)[dim]
        assert current <= 1.0 + TOL + 0.02 or imb[dim] < initial[dim], (
            f"{label}: dim {dim} did not improve "
            f"({fmt_pct(initial[dim])}% -> {fmt_pct(imb[dim])}%)"
        )
    # No-harm rule: untargeted region imbalance stays controlled.
    assert imb[3] <= max(initial[3] + 0.06, 1.0 + TOL + 0.06)

    if label == "T4":
        p = params()
        write_result(
            "table1_table2",
            [
                f"AAA-surrogate, {aaa_case.mesh.count(3)} tets, "
                f"{aaa_case.nparts} parts, tol {TOL:.0%} "
                f"(imbalances vs T0 means)",
                _rows.get("T0", ""),
                *(
                    _rows.get(lbl, f"{lbl}: (not run)")
                    for lbl, _p, _t in TABLE1
                ),
                "",
                "paper (133M tets, 16384 parts): T0 Rgn 4.3 / Vtx 19.41; "
                "T1 Vtx 4.99; T2 Edge 4.91 Vtx 4.99; T3 Edge 4.99; "
                "T4 Face 4.97 Edge 4.99",
            ],
        )
